// svc/server: the NDJSON wire protocol, the golden request/response
// corpus, and the socket lifecycle (serve / connect / drain).  The
// golden fixture pins the response BYTES for a corpus spanning all
// three fault regimes — regenerate deliberately with
//
//   LS_SVC_GOLDEN_REGEN=1 tests/svc_test --gtest_filter='SvcGolden*'
//
// Responses carry only values (no timestamps, no cache provenance), so
// the replay must be byte-identical on every machine, cache state, and
// thread count.
#include "svc/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace svc {
namespace {

using verify::value_identical;

TEST(WireRequestParse, AppliesDefaultsAndOverrides) {
  const WireRequest defaults = parse_request(R"({"op": "cr"})");
  EXPECT_EQ(defaults.id, 0);
  EXPECT_EQ(defaults.query.n, 2);
  EXPECT_EQ(defaults.query.f, 1);
  EXPECT_TRUE(std::isnan(defaults.query.beta));
  EXPECT_EQ(defaults.query.regime, FaultRegime::kNone);

  const WireRequest full = parse_request(
      R"({"id": 7, "op": "cr", "n": 5, "f": 2, "beta": 2.5,)"
      R"( "window_lo": 2, "window_hi": 32, "interior_samples": 3,)"
      R"( "regime": "byzantine"})");
  EXPECT_EQ(full.id, 7);
  EXPECT_EQ(full.query.n, 5);
  EXPECT_EQ(full.query.f, 2);
  EXPECT_TRUE(value_identical(full.query.beta, 2.5L));
  EXPECT_TRUE(value_identical(full.query.window_hi, 32.0L));
  EXPECT_EQ(full.query.interior_samples, 3);
  EXPECT_EQ(full.query.regime, FaultRegime::kByzantine);

  const WireRequest crash = parse_request(
      R"({"op": "cr", "n": 3, "f": 1, "regime": "crash",)"
      R"( "crash_times": [2.0, "inf", "inf"]})");
  EXPECT_EQ(crash.query.regime, FaultRegime::kCrash);
  ASSERT_EQ(crash.query.crash_times.size(), 3u);
  EXPECT_TRUE(std::isinf(crash.query.crash_times[1]));
}

TEST(WireRequestParse, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_request("not json"), PreconditionError);
  EXPECT_THROW((void)parse_request(R"({"n": 3})"), PreconditionError);
  EXPECT_THROW((void)parse_request(R"({"op": "shutdown"})"),
               PreconditionError);
  EXPECT_THROW((void)parse_request(R"({"op": "cr", "regime": "weird"})"),
               PreconditionError);
}

TEST(QueryServerHandleLine, MatchesTheDirectPath) {
  QueryServer server;
  const std::string request =
      R"({"id": 3, "op": "cr", "n": 5, "f": 2, "window_hi": 16})";
  const std::string response = server.handle_line(request);
  CrQuery query;
  query.n = 5;
  query.f = 2;
  query.window_hi = 16;
  EXPECT_EQ(response, render_response(3, evaluate_query_direct(query)));
  // The warm (cached) pass must be byte-identical — the wire-level
  // determinism contract.
  EXPECT_EQ(server.handle_line(request), response);
  EXPECT_GT(server.service().stats().cache_hits, 0u);
}

TEST(QueryServerHandleLine, ErrorsNeverThrowAndNameTheProblem) {
  QueryServer server;
  const std::string malformed = server.handle_line("garbage");
  EXPECT_NE(malformed.find("\"ok\":false"), std::string::npos) << malformed;
  const std::string invalid =
      server.handle_line(R"({"id": 9, "op": "cr", "n": 4, "f": 1})");
  EXPECT_NE(invalid.find("\"id\":9"), std::string::npos) << invalid;
  EXPECT_NE(invalid.find("\"ok\":false"), std::string::npos) << invalid;
  EXPECT_EQ(server.stats().errors, 2u);
  EXPECT_EQ(server.stats().requests, 2u);
}

TEST(QueryServerHandleLine, RejectsAtTheAdmissionBound) {
  QueryServerOptions options;
  options.max_inflight = 0;  // every request is over the bound
  QueryServer server(options);
  const std::string response =
      server.handle_line(R"({"op": "cr", "n": 3, "f": 1})");
  EXPECT_NE(response.find("overloaded"), std::string::npos) << response;
  EXPECT_EQ(server.stats().rejected, 1u);
}

/// The golden corpus: one request per line, spanning defaults, explicit
/// beta, both infeasible and feasible Byzantine queries (the infeasible
/// one pins the non-finite codec on the wire), a crash schedule, a
/// canonicalization error, and three probabilistic queries — a
/// convergent p, a past-threshold p whose divergent expected CR pins
/// the "inf" codec on the wire, and an out-of-range fault_p error.
std::vector<std::string> golden_requests() {
  return {
      R"({"id": 1, "op": "cr"})",
      R"({"id": 2, "op": "cr", "n": 5, "f": 2, "window_hi": 16})",
      R"({"id": 3, "op": "cr", "n": 5, "f": 2, "beta": 2.5, "window_hi": 16})",
      R"({"id": 4, "op": "cr", "n": 5, "f": 2, "regime": "byzantine", "window_hi": 16})",
      R"({"id": 5, "op": "cr", "n": 4, "f": 2, "regime": "byzantine", "window_hi": 16})",
      R"({"id": 6, "op": "cr", "n": 3, "f": 1, "regime": "crash", "crash_times": [2.0, "inf", "inf"], "window_hi": 16})",
      R"({"id": 7, "op": "cr", "n": 4, "f": 1})",
      R"({"id": 8, "op": "cr", "n": 5, "f": 2, "regime": "probabilistic", "fault_p": 0.25, "window_hi": 16})",
      R"({"id": 9, "op": "cr", "n": 3, "f": 1, "regime": "probabilistic", "fault_p": 0.8, "window_hi": 16})",
      R"({"id": 10, "op": "cr", "n": 3, "f": 1, "regime": "probabilistic", "fault_p": 1.5, "window_hi": 16})",
  };
}

std::string serialize_golden(const std::vector<std::string>& requests,
                             const std::vector<std::string>& responses) {
  std::ostringstream out;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    out << requests[i] << '\n' << responses[i] << '\n';
  }
  return out.str();
}

TEST(SvcGoldenWire, CorpusReplayIsByteIdentical) {
  const std::vector<std::string> requests = golden_requests();
  QueryServer server;
  std::vector<std::string> responses;
  responses.reserve(requests.size());
  for (const std::string& request : requests) {
    responses.push_back(server.handle_line(request));
  }
  // A second, warm replay through the SAME server must not change a
  // byte, and a fresh server must agree with the warm one.
  QueryServer fresh;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(server.handle_line(requests[i]), responses[i]) << requests[i];
    EXPECT_EQ(fresh.handle_line(requests[i]), responses[i]) << requests[i];
  }
  const std::string actual = serialize_golden(requests, responses);

  const std::string path = LS_SVC_GOLDEN_FIXTURE;
  if (std::getenv("LS_SVC_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing fixture " << path
                         << " — regenerate with LS_SVC_GOLDEN_REGEN=1";
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), actual)
      << "wire responses diverged from the committed corpus; if the "
         "change is intended, regenerate with LS_SVC_GOLDEN_REGEN=1";
}

/// Minimal blocking NDJSON client for the socket tests.
class WireClient {
 public:
  explicit WireClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::strncpy(address.sun_path, path.c_str(),
                 sizeof(address.sun_path) - 1);
    // The server binds asynchronously; retry briefly.
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                    sizeof(address)) == 0) {
        connected_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ~WireClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  [[nodiscard]] std::string round_trip(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t wrote =
          ::write(fd_, framed.data() + sent, framed.size() - sent);
      if (wrote <= 0) return "";
      sent += static_cast<std::size_t>(wrote);
    }
    std::string response;
    char byte = 0;
    while (::read(fd_, &byte, 1) == 1) {
      if (byte == '\n') return response;
      response.push_back(byte);
    }
    return response;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(QueryServerSocket, ServesAndDrainsCleanly) {
  const std::string path = "/tmp/ls_svc_test_" +
                           std::to_string(::getpid()) + ".sock";
  QueryServerOptions options;
  options.threads = 2;
  QueryServer server(options);
  std::thread accept_loop([&server, &path] { server.serve(path); });

  {
    WireClient client(path);
    ASSERT_TRUE(client.connected()) << "server never bound " << path;
    const std::string request =
        R"({"id": 11, "op": "cr", "n": 3, "f": 1, "window_hi": 8})";
    const std::string over_socket = client.round_trip(request);
    // The socket path and the in-process path are the same bytes.
    QueryServer reference;
    EXPECT_EQ(over_socket, reference.handle_line(request));
    // Errors keep the connection open.
    const std::string error = client.round_trip("garbage");
    EXPECT_NE(error.find("\"ok\":false"), std::string::npos) << error;
    const std::string again = client.round_trip(request);
    EXPECT_EQ(again, over_socket);
  }

  server.stop();
  accept_loop.join();
  EXPECT_GE(server.stats().connections, 1u);
  EXPECT_EQ(server.stats().requests, 3u);
  // Drain removed the socket file.
  std::ifstream gone(path);
  EXPECT_FALSE(gone.good());
}

TEST(QueryServerSocket, StopWithoutConnectionsReturnsPromptly) {
  const std::string path = "/tmp/ls_svc_idle_" +
                           std::to_string(::getpid()) + ".sock";
  QueryServer server;
  std::thread accept_loop([&server, &path] { server.serve(path); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();
  accept_loop.join();
  EXPECT_EQ(server.stats().connections, 0u);
}

}  // namespace
}  // namespace svc
}  // namespace linesearch

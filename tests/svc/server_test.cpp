// svc/server: the NDJSON wire protocol, the golden request/response
// corpus, and the socket lifecycle (serve / connect / drain).  The
// golden fixture pins the response BYTES for a corpus spanning all
// three fault regimes — regenerate deliberately with
//
//   LS_SVC_GOLDEN_REGEN=1 tests/svc_test --gtest_filter='SvcGolden*'
//
// Responses carry only values (no timestamps, no cache provenance), so
// the replay must be byte-identical on every machine, cache state, and
// thread count.
#include "svc/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace svc {
namespace {

using verify::value_identical;

TEST(WireRequestParse, AppliesDefaultsAndOverrides) {
  const WireRequest defaults = parse_request(R"({"op": "cr"})");
  EXPECT_EQ(defaults.id, 0);
  EXPECT_EQ(defaults.query.n, 2);
  EXPECT_EQ(defaults.query.f, 1);
  EXPECT_TRUE(std::isnan(defaults.query.beta));
  EXPECT_EQ(defaults.query.regime, FaultRegime::kNone);

  const WireRequest full = parse_request(
      R"({"id": 7, "op": "cr", "n": 5, "f": 2, "beta": 2.5,)"
      R"( "window_lo": 2, "window_hi": 32, "interior_samples": 3,)"
      R"( "regime": "byzantine"})");
  EXPECT_EQ(full.id, 7);
  EXPECT_EQ(full.query.n, 5);
  EXPECT_EQ(full.query.f, 2);
  EXPECT_TRUE(value_identical(full.query.beta, 2.5L));
  EXPECT_TRUE(value_identical(full.query.window_hi, 32.0L));
  EXPECT_EQ(full.query.interior_samples, 3);
  EXPECT_EQ(full.query.regime, FaultRegime::kByzantine);

  const WireRequest crash = parse_request(
      R"({"op": "cr", "n": 3, "f": 1, "regime": "crash",)"
      R"( "crash_times": [2.0, "inf", "inf"]})");
  EXPECT_EQ(crash.query.regime, FaultRegime::kCrash);
  ASSERT_EQ(crash.query.crash_times.size(), 3u);
  EXPECT_TRUE(std::isinf(crash.query.crash_times[1]));
}

TEST(WireRequestParse, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_request("not json"), PreconditionError);
  EXPECT_THROW((void)parse_request(R"({"n": 3})"), PreconditionError);
  EXPECT_THROW((void)parse_request(R"({"op": "shutdown"})"),
               PreconditionError);
  EXPECT_THROW((void)parse_request(R"({"op": "cr", "regime": "weird"})"),
               PreconditionError);
}

TEST(QueryServerHandleLine, MatchesTheDirectPath) {
  QueryServer server;
  const std::string request =
      R"({"id": 3, "op": "cr", "n": 5, "f": 2, "window_hi": 16})";
  const std::string response = server.handle_line(request);
  CrQuery query;
  query.n = 5;
  query.f = 2;
  query.window_hi = 16;
  EXPECT_EQ(response, render_response(3, evaluate_query_direct(query)));
  // The warm (cached) pass must be byte-identical — the wire-level
  // determinism contract.
  EXPECT_EQ(server.handle_line(request), response);
  EXPECT_GT(server.service().stats().cache_hits, 0u);
}

TEST(QueryServerHandleLine, ErrorsNeverThrowAndNameTheProblem) {
  QueryServer server;
  const std::string malformed = server.handle_line("garbage");
  EXPECT_NE(malformed.find("\"ok\":false"), std::string::npos) << malformed;
  const std::string invalid =
      server.handle_line(R"({"id": 9, "op": "cr", "n": 4, "f": 1})");
  EXPECT_NE(invalid.find("\"id\":9"), std::string::npos) << invalid;
  EXPECT_NE(invalid.find("\"ok\":false"), std::string::npos) << invalid;
  EXPECT_EQ(server.stats().errors, 2u);
  EXPECT_EQ(server.stats().requests, 2u);
}

TEST(QueryServerHandleLine, RejectsAtTheAdmissionBound) {
  QueryServerOptions options;
  options.max_inflight = 0;  // every request is over the bound
  QueryServer server(options);
  const std::string response =
      server.handle_line(R"({"op": "cr", "n": 3, "f": 1})");
  EXPECT_NE(response.find("overloaded"), std::string::npos) << response;
  EXPECT_EQ(server.stats().rejected, 1u);
}

/// The golden corpus: one request per line, spanning defaults, explicit
/// beta, both infeasible and feasible Byzantine queries (the infeasible
/// one pins the non-finite codec on the wire), a crash schedule, a
/// canonicalization error, and three probabilistic queries — a
/// convergent p, a past-threshold p whose divergent expected CR pins
/// the "inf" codec on the wire, and an out-of-range fault_p error.
std::vector<std::string> golden_requests() {
  return {
      R"({"id": 1, "op": "cr"})",
      R"({"id": 2, "op": "cr", "n": 5, "f": 2, "window_hi": 16})",
      R"({"id": 3, "op": "cr", "n": 5, "f": 2, "beta": 2.5, "window_hi": 16})",
      R"({"id": 4, "op": "cr", "n": 5, "f": 2, "regime": "byzantine", "window_hi": 16})",
      R"({"id": 5, "op": "cr", "n": 4, "f": 2, "regime": "byzantine", "window_hi": 16})",
      R"({"id": 6, "op": "cr", "n": 3, "f": 1, "regime": "crash", "crash_times": [2.0, "inf", "inf"], "window_hi": 16})",
      R"({"id": 7, "op": "cr", "n": 4, "f": 1})",
      R"({"id": 8, "op": "cr", "n": 5, "f": 2, "regime": "probabilistic", "fault_p": 0.25, "window_hi": 16})",
      R"({"id": 9, "op": "cr", "n": 3, "f": 1, "regime": "probabilistic", "fault_p": 0.8, "window_hi": 16})",
      R"({"id": 10, "op": "cr", "n": 3, "f": 1, "regime": "probabilistic", "fault_p": 1.5, "window_hi": 16})",
  };
}

std::string serialize_golden(const std::vector<std::string>& requests,
                             const std::vector<std::string>& responses) {
  std::ostringstream out;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    out << requests[i] << '\n' << responses[i] << '\n';
  }
  return out.str();
}

TEST(SvcGoldenWire, CorpusReplayIsByteIdentical) {
  const std::vector<std::string> requests = golden_requests();
  QueryServer server;
  std::vector<std::string> responses;
  responses.reserve(requests.size());
  for (const std::string& request : requests) {
    responses.push_back(server.handle_line(request));
  }
  // A second, warm replay through the SAME server must not change a
  // byte, and a fresh server must agree with the warm one.
  QueryServer fresh;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(server.handle_line(requests[i]), responses[i]) << requests[i];
    EXPECT_EQ(fresh.handle_line(requests[i]), responses[i]) << requests[i];
  }
  const std::string actual = serialize_golden(requests, responses);

  const std::string path = LS_SVC_GOLDEN_FIXTURE;
  if (std::getenv("LS_SVC_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing fixture " << path
                         << " — regenerate with LS_SVC_GOLDEN_REGEN=1";
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), actual)
      << "wire responses diverged from the committed corpus; if the "
         "change is intended, regenerate with LS_SVC_GOLDEN_REGEN=1";
}

/// Minimal blocking NDJSON client for the socket tests.
class WireClient {
 public:
  explicit WireClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::strncpy(address.sun_path, path.c_str(),
                 sizeof(address.sun_path) - 1);
    // The server binds asynchronously; retry briefly.
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                    sizeof(address)) == 0) {
        connected_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ~WireClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  [[nodiscard]] std::string round_trip(const std::string& line) {
    if (!send_raw(line + "\n")) return "";
    return read_line();
  }

  bool send_raw(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t wrote =
          ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (wrote <= 0) return false;
      sent += static_cast<std::size_t>(wrote);
    }
    return true;
  }

  [[nodiscard]] std::string read_line() {
    std::string response;
    char byte = 0;
    while (::read(fd_, &byte, 1) == 1) {
      if (byte == '\n') break;
      response.push_back(byte);
    }
    return response;
  }

  /// Every remaining response line until the server closes the socket.
  [[nodiscard]] std::vector<std::string> read_lines_until_eof() {
    std::vector<std::string> lines;
    std::string current;
    char byte = 0;
    while (::read(fd_, &byte, 1) == 1) {
      if (byte == '\n') {
        lines.push_back(current);
        current.clear();
      } else {
        current.push_back(byte);
      }
    }
    if (!current.empty()) lines.push_back(current);
    return lines;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(QueryServerSocket, ServesAndDrainsCleanly) {
  const std::string path = "/tmp/ls_svc_test_" +
                           std::to_string(::getpid()) + ".sock";
  QueryServerOptions options;
  options.threads = 2;
  QueryServer server(options);
  std::thread accept_loop([&server, &path] { server.serve(path); });

  {
    WireClient client(path);
    ASSERT_TRUE(client.connected()) << "server never bound " << path;
    const std::string request =
        R"({"id": 11, "op": "cr", "n": 3, "f": 1, "window_hi": 8})";
    const std::string over_socket = client.round_trip(request);
    // The socket path and the in-process path are the same bytes.
    QueryServer reference;
    EXPECT_EQ(over_socket, reference.handle_line(request));
    // Errors keep the connection open.
    const std::string error = client.round_trip("garbage");
    EXPECT_NE(error.find("\"ok\":false"), std::string::npos) << error;
    const std::string again = client.round_trip(request);
    EXPECT_EQ(again, over_socket);
  }

  server.stop();
  accept_loop.join();
  EXPECT_GE(server.stats().connections, 1u);
  EXPECT_EQ(server.stats().requests, 3u);
  // Drain removed the socket file.
  std::ifstream gone(path);
  EXPECT_FALSE(gone.good());
}

/// The drain contract's reject half, deterministically: one visible
/// "draining" error per COMPLETE pending line, ids echoed whenever the
/// line parses, blank lines skipped, a trailing fragment (no newline =
/// never a request) ignored.
TEST(QueryServerHardening, DrainRejectLinesAnswerEveryPendingLine) {
  EXPECT_TRUE(drain_reject_lines("").empty());
  EXPECT_TRUE(drain_reject_lines("no newline yet").empty());
  const std::vector<std::string> rejections = drain_reject_lines(
      "{\"id\": 4, \"op\": \"cr\"}\n\nnot json\n{\"id\": 6}\ntail fragment");
  ASSERT_EQ(rejections.size(), 3u);
  const std::string reason = "draining: server is shutting down";
  EXPECT_EQ(rejections[0], render_error(4, reason));
  EXPECT_EQ(rejections[1], render_error(0, reason));
  EXPECT_EQ(rejections[2], render_error(6, reason));
}

/// Regression: a peer that closes without reading used to raise SIGPIPE
/// from the response write and kill the whole process.  MSG_NOSIGNAL in
/// write_line turns that into a counted EPIPE; the server — and this
/// very test binary — must survive and keep serving.
TEST(QueryServerSocket, SurvivesAPeerThatClosesWithoutReading) {
  const std::string path = "/tmp/ls_svc_epipe_" +
                           std::to_string(::getpid()) + ".sock";
  QueryServerOptions options;
  options.threads = 2;
  QueryServer server(options);
  std::thread accept_loop([&server, &path] { server.serve(path); });

  {
    WireClient rude(path);
    ASSERT_TRUE(rude.connected()) << "server never bound " << path;
    // A cold evaluation outlives the peer's immediate close below, so
    // the response write lands on a closed socket.
    ASSERT_TRUE(rude.send_raw(
        R"({"id": 1, "op": "cr", "n": 6, "f": 2, "window_hi": 1024})"
        "\n"));
  }  // closed before reading a byte

  WireClient polite(path);
  ASSERT_TRUE(polite.connected());
  const std::string request =
      R"({"id": 2, "op": "cr", "n": 3, "f": 1, "window_hi": 8})";
  QueryServer reference;
  EXPECT_EQ(polite.round_trip(request), reference.handle_line(request));

  server.stop();
  accept_loop.join();
  EXPECT_GE(server.stats().connections, 2u);
  EXPECT_GE(server.stats().write_failures, 1u);
}

TEST(QueryServerSocket, OversizedFrameIsRejectedVisiblyThenClosed) {
  const std::string path = "/tmp/ls_svc_frame_" +
                           std::to_string(::getpid()) + ".sock";
  QueryServerOptions options;
  options.max_request_bytes = 64;
  QueryServer server(options);
  std::thread accept_loop([&server, &path] { server.serve(path); });

  {
    WireClient client(path);
    ASSERT_TRUE(client.connected()) << "server never bound " << path;
    // A newline-free line that outgrew the bound can only get worse:
    // the server answers with a structured rejection, then closes.
    ASSERT_TRUE(client.send_raw(std::string(256, 'a')));
    const std::vector<std::string> lines = client.read_lines_until_eof();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("malformed: request line exceeds 64 bytes"),
              std::string::npos)
        << lines[0];
  }

  // The rejection closed ONE connection, not the server.
  WireClient next(path);
  ASSERT_TRUE(next.connected());
  const std::string request =
      R"({"id": 3, "op": "cr", "n": 3, "f": 1, "window_hi": 8})";
  EXPECT_NE(next.round_trip(request).find("\"ok\":true"),
            std::string::npos);

  server.stop();
  accept_loop.join();
  EXPECT_EQ(server.stats().frame_rejected, 1u);
}

TEST(QueryServerSocket, IdleConnectionsExpireEvenWhileTrickling) {
  const std::string path = "/tmp/ls_svc_idle_to_" +
                           std::to_string(::getpid()) + ".sock";
  QueryServerOptions options;
  options.idle_timeout_ms = 50;
  QueryServer server(options);
  std::thread accept_loop([&server, &path] { server.serve(path); });

  WireClient client(path);
  ASSERT_TRUE(client.connected()) << "server never bound " << path;
  // A complete request resets the idle clock...
  const std::string request =
      R"({"id": 4, "op": "cr", "n": 3, "f": 1, "window_hi": 8})";
  EXPECT_NE(client.round_trip(request).find("\"ok\":true"),
            std::string::npos);
  // ...but a dribbled partial line does NOT: the slowloris pattern
  // expires exactly like silence, with a structured timeout then close.
  ASSERT_TRUE(client.send_raw("{\"id\": 5"));
  const std::vector<std::string> lines = client.read_lines_until_eof();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("timeout: connection idle beyond 50 ms"),
            std::string::npos)
      << lines[0];

  server.stop();
  accept_loop.join();
  EXPECT_EQ(server.stats().idle_closed, 1u);
}

TEST(QueryServerSocket, GarbageBytesKeepTheConnectionAndServerAlive) {
  const std::string path = "/tmp/ls_svc_garbage_" +
                           std::to_string(::getpid()) + ".sock";
  QueryServer server;
  std::thread accept_loop([&server, &path] { server.serve(path); });

  WireClient client(path);
  ASSERT_TRUE(client.connected()) << "server never bound " << path;
  // The chaos injector's whole garbage alphabet, framed as a line: a
  // structured parse error comes back and the connection stays open.
  ASSERT_TRUE(client.send_raw("\x01\x02\x03\x04\x05\x06\x07\n"));
  const std::string error = client.read_line();
  EXPECT_NE(error.find("\"ok\":false"), std::string::npos) << error;
  EXPECT_NE(error.find("\"id\":0"), std::string::npos) << error;
  const std::string request =
      R"({"id": 6, "op": "cr", "n": 3, "f": 1, "window_hi": 8})";
  EXPECT_NE(client.round_trip(request).find("\"ok\":true"),
            std::string::npos);

  server.stop();
  accept_loop.join();
}

/// The drain contract over a live socket: a burst already in the socket
/// when stop() lands is never silently dropped — every request draws
/// either its genuine answer or a visible "draining" rejection, the
/// counts reconcile, serve() returns, and the socket file is unlinked.
TEST(QueryServerSocket, DrainMidBurstAnswersOrRejectsEveryRequest) {
  const std::string path = "/tmp/ls_svc_burst_" +
                           std::to_string(::getpid()) + ".sock";
  QueryServerOptions options;
  options.threads = 2;
  QueryServer server(options);
  std::thread accept_loop([&server, &path] { server.serve(path); });

  WireClient client(path);
  ASSERT_TRUE(client.connected()) << "server never bound " << path;
  const std::string warm =
      R"({"id": 1, "op": "cr", "n": 3, "f": 1, "window_hi": 8})";
  EXPECT_NE(client.round_trip(warm).find("\"ok\":true"),
            std::string::npos);

  // The burst is written BEFORE stop(), so the bytes are queued when the
  // server observes the flag: the drain owes each line a response.
  std::ostringstream burst;
  for (int id = 2; id <= 6; ++id) {
    burst << R"({"id": )" << id
          << R"(, "op": "cr", "n": 3, "f": 1, "window_hi": 8})" << "\n";
  }
  ASSERT_TRUE(client.send_raw(burst.str()));
  server.stop();
  const std::vector<std::string> responses = client.read_lines_until_eof();
  accept_loop.join();

  ASSERT_EQ(responses.size(), 5u);
  std::uint64_t drained = 0;
  for (const std::string& response : responses) {
    const bool answered =
        response.find("\"ok\":true") != std::string::npos;
    const bool rejected = response.find("draining") != std::string::npos;
    EXPECT_TRUE(answered || rejected) << response;
    if (rejected) ++drained;
  }
  EXPECT_EQ(server.stats().drain_rejected, drained);
  std::ifstream gone(path);
  EXPECT_FALSE(gone.good());
}

TEST(QueryServerSocket, StopWithoutConnectionsReturnsPromptly) {
  const std::string path = "/tmp/ls_svc_idle_" +
                           std::to_string(::getpid()) + ".sock";
  QueryServer server;
  std::thread accept_loop([&server, &path] { server.serve(path); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();
  accept_loop.join();
  EXPECT_EQ(server.stats().connections, 0u);
}

}  // namespace
}  // namespace svc
}  // namespace linesearch

// svc/query: canonicalization, keys, sharding, and the QueryService
// determinism contract — every cache configuration, thread count, and
// arrival order returns results value_identical to
// evaluate_query_direct.  This file (and server_test.cpp) carries the
// ctest label `svc`, so the ThreadSanitizer CI job can select exactly
// the concurrency proofs.
#include "svc/query.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/competitive.hpp"
#include "eval/validation.hpp"
#include "util/error.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace svc {
namespace {

using verify::value_identical;

bool same_result(const QueryResult& a, const QueryResult& b) {
  return a.feasible == b.feasible && value_identical(a.cr, b.cr) &&
         value_identical(a.argmax, b.argmax) &&
         value_identical(a.cr_positive, b.cr_positive) &&
         value_identical(a.cr_negative, b.cr_negative) &&
         a.probes == b.probes &&
         a.undetected_probes == b.undetected_probes;
}

CrQuery pair_query(const int n, const int f, const Real window_hi = 16) {
  CrQuery query;
  query.n = n;
  query.f = f;
  query.window_hi = window_hi;
  return query;
}

TEST(CrQueryCanonicalize, ResolvesDefaultBetaToTheOptimal) {
  const CrQuery canonical = canonicalize_query(pair_query(5, 2));
  EXPECT_TRUE(value_identical(canonical.beta, optimal_beta(5, 2)));

  // "default beta" and "explicitly optimal beta" are the SAME canonical
  // query — one cache entry, one backend.
  CrQuery explicit_beta = pair_query(5, 2);
  explicit_beta.beta = optimal_beta(5, 2);
  EXPECT_EQ(query_key(canonical),
            query_key(canonicalize_query(explicit_beta)));
}

TEST(CrQueryCanonicalize, RejectsInvalidInput) {
  EXPECT_THROW((void)canonicalize_query(pair_query(3, 0)),
               PreconditionError);
  // Outside the proportional regime: n >= 2f+2.
  EXPECT_THROW((void)canonicalize_query(pair_query(4, 1)),
               PreconditionError);
  CrQuery bad_window = pair_query(3, 1);
  bad_window.window_lo = 8;
  bad_window.window_hi = 2;
  EXPECT_THROW((void)canonicalize_query(bad_window), PreconditionError);
  CrQuery bad_beta = pair_query(3, 1);
  bad_beta.beta = 1;  // cone parameter must exceed 1
  EXPECT_THROW((void)canonicalize_query(bad_beta), PreconditionError);
  // Crash regime demands a full per-robot schedule...
  CrQuery crash = pair_query(3, 1);
  crash.regime = FaultRegime::kCrash;
  crash.crash_times = {1.0L, 2.0L};  // size 2 != n = 3
  EXPECT_THROW((void)canonicalize_query(crash), PreconditionError);
  // ...and the other regimes demand none.
  CrQuery stray = pair_query(3, 1);
  stray.crash_times = {1.0L, 2.0L, 3.0L};
  EXPECT_THROW((void)canonicalize_query(stray), PreconditionError);
}

TEST(CrQueryKey, SeparatesEveryField) {
  const std::string base = query_key(canonicalize_query(pair_query(5, 2)));
  EXPECT_NE(base, query_key(canonicalize_query(pair_query(4, 2))));
  EXPECT_NE(base, query_key(canonicalize_query(pair_query(5, 3))));
  EXPECT_NE(base,
            query_key(canonicalize_query(pair_query(5, 2, 32))));
  CrQuery byz = pair_query(5, 2);
  byz.regime = FaultRegime::kByzantine;
  EXPECT_NE(base, query_key(canonicalize_query(byz)));
  CrQuery crash = pair_query(5, 2);
  crash.regime = FaultRegime::kCrash;
  crash.crash_times = {kInfinity, 3.0L, kInfinity, kInfinity, kInfinity};
  EXPECT_NE(base, query_key(canonicalize_query(crash)));
}

TEST(CrQueryShard, KeysByRegimePairWithinBounds) {
  const CrQuery a = canonicalize_query(pair_query(5, 2));
  const CrQuery b = canonicalize_query(pair_query(5, 2, 32));
  for (const std::size_t shards : {1u, 2u, 8u}) {
    EXPECT_LT(query_shard(a, shards), shards);
    // Same regime pair, different window: same shard.
    EXPECT_EQ(query_shard(a, shards), query_shard(b, shards));
  }
}

TEST(QueryResultDirect, ByzantineInfeasibleBelowQuorum) {
  // n = 4 < 2f+1 = 5: no quorum can form, cr = inf over the wire.
  CrQuery query = pair_query(4, 2);
  query.regime = FaultRegime::kByzantine;
  const QueryResult result = evaluate_query_direct(query);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(std::isinf(result.cr));

  CrQuery feasible = pair_query(5, 2);
  feasible.regime = FaultRegime::kByzantine;
  const QueryResult ok = evaluate_query_direct(feasible);
  EXPECT_TRUE(ok.feasible);
}

TEST(QueryService, LruEvictsInRecencyOrder) {
  // One shard, capacity two: the LRU order is fully observable through
  // the evaluations counter (a hit never recomputes).
  QueryServiceOptions options;
  options.shard_count = 1;
  options.shard_capacity = 2;
  options.coalesce = false;
  QueryService service(options);

  const CrQuery a = pair_query(3, 1, 8);
  const CrQuery b = pair_query(3, 1, 12);
  const CrQuery c = pair_query(3, 1, 16);

  (void)service.evaluate(a);  // order: a
  (void)service.evaluate(b);  // order: b a
  (void)service.evaluate(a);  // HIT, order: a b
  EXPECT_EQ(service.stats().cache_hits, 1u);
  (void)service.evaluate(c);  // evicts b (LRU), order: c a
  EXPECT_EQ(service.stats().evictions, 1u);

  (void)service.evaluate(a);  // still resident — the touch saved it
  EXPECT_EQ(service.stats().cache_hits, 2u);
  (void)service.evaluate(b);  // evicted: recomputes
  EXPECT_EQ(service.stats().cache_hits, 2u);
  EXPECT_EQ(service.stats().evaluations, 4u);
}

TEST(QueryService, ShardsEvictIndependently) {
  // Pairs (2, 1) and (3, 1) land on different shards of a 2-shard
  // layout ((n * 31 + f) mod 2 differs), so filling one pair's shard
  // never displaces the other's hot entry.
  QueryServiceOptions options;
  options.shard_count = 2;
  options.shard_capacity = 1;
  options.coalesce = false;
  QueryService service(options);
  ASSERT_NE(query_shard(canonicalize_query(pair_query(2, 1)), 2),
            query_shard(canonicalize_query(pair_query(3, 1)), 2));

  (void)service.evaluate(pair_query(2, 1, 8));
  (void)service.evaluate(pair_query(3, 1, 8));
  (void)service.evaluate(pair_query(3, 1, 12));  // evicts (3,1,8) only
  EXPECT_EQ(service.stats().evictions, 1u);
  (void)service.evaluate(pair_query(2, 1, 8));  // survived its neighbour
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(QueryService, SharesOneBackendAcrossWindows) {
  QueryService service;
  (void)service.evaluate(pair_query(5, 2, 8));
  (void)service.evaluate(pair_query(5, 2, 16));
  (void)service.evaluate(pair_query(5, 2, 32));
  EXPECT_EQ(service.backend_count(), 1u);
  EXPECT_EQ(service.stats().backend_builds, 1u);
  EXPECT_EQ(service.stats().backend_hits, 2u);

  service.clear();
  EXPECT_EQ(service.backend_count(), 0u);
  // Counters keep their totals across clear().
  EXPECT_EQ(service.stats().backend_builds, 1u);
}

TEST(QueryService, CacheOnAndOffAreBitIdentical) {
  QueryServiceOptions cold;
  cold.cache_results = false;
  QueryService uncached(cold);
  QueryService cached;
  for (const auto& [n, f] : proportional_regime_pairs(8)) {
    const CrQuery query = pair_query(n, f);
    const QueryResult direct = evaluate_query_direct(query);
    const QueryResult off = uncached.evaluate(query);
    const QueryResult on_cold = cached.evaluate(query);
    const QueryResult on_warm = cached.evaluate(query);
    EXPECT_TRUE(same_result(direct, off)) << "n=" << n << " f=" << f;
    EXPECT_TRUE(same_result(direct, on_cold)) << "n=" << n << " f=" << f;
    EXPECT_TRUE(same_result(direct, on_warm)) << "n=" << n << " f=" << f;
  }
  EXPECT_EQ(uncached.stats().cache_hits, 0u);
  EXPECT_GT(cached.stats().cache_hits, 0u);
}

// The concurrency proof: T threads race the same query mix through one
// service; every answer must be value_identical to the direct path no
// matter who computed, who coalesced, and who hit the cache.  Run under
// TSAN via `ctest -L svc`.
void race_threads(const int threads, const bool cache) {
  QueryServiceOptions options;
  options.cache_results = cache;
  QueryService service(options);

  const std::vector<CrQuery> queries = {
      pair_query(3, 1), pair_query(5, 2), pair_query(7, 3),
      []() {
        CrQuery q = pair_query(5, 2);
        q.regime = FaultRegime::kByzantine;
        return q;
      }(),
      []() {
        CrQuery q = pair_query(3, 1);
        q.regime = FaultRegime::kCrash;
        q.crash_times = {2.0L, kInfinity, kInfinity};
        return q;
      }(),
  };
  std::vector<QueryResult> expected;
  expected.reserve(queries.size());
  for (const CrQuery& query : queries) {
    expected.push_back(evaluate_query_direct(query));
  }

  constexpr int kRounds = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&service, &queries, &expected, &mismatches, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < queries.size(); ++i) {
          // Stagger starting points so threads collide on different
          // queries, exercising coalescing and cache paths together.
          const std::size_t j =
              (i + static_cast<std::size_t>(t)) % queries.size();
          const QueryResult result = service.evaluate(queries[j]);
          if (!same_result(result, expected[j])) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0);

  const QueryService::Stats stats = service.stats();
  const std::uint64_t total = static_cast<std::uint64_t>(threads) *
                              kRounds * queries.size();
  EXPECT_EQ(stats.queries, total);
  if (cache) {
    // Every query is answered exactly one way.
    EXPECT_EQ(stats.cache_hits + stats.coalesced + stats.evaluations,
              total);
  } else {
    // No cache: every call either computed or coalesced with the leader.
    EXPECT_EQ(stats.coalesced + stats.evaluations, total);
  }
}

TEST(QueryService, OneThreadIsExact) { race_threads(1, true); }
TEST(QueryService, TwoThreadsAreExact) { race_threads(2, true); }
TEST(QueryService, EightThreadsAreExact) { race_threads(8, true); }
TEST(QueryService, EightThreadsUncachedAreExact) { race_threads(8, false); }

TEST(QueryService, CoalescingAccountsEveryCall) {
  // Sequential calls never coalesce (nothing is in flight), so the
  // counter partition is exact and deterministic here.
  QueryServiceOptions options;
  options.cache_results = false;
  QueryService service(options);
  for (int i = 0; i < 3; ++i) (void)service.evaluate(pair_query(3, 1));
  const QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.evaluations, 3u);
  EXPECT_EQ(stats.coalesced, 0u);
}

TEST(QueryService, InvalidQueriesThrowWithoutCounting) {
  QueryService service;
  EXPECT_THROW((void)service.evaluate(pair_query(4, 1)),
               PreconditionError);
  EXPECT_EQ(service.stats().queries, 0u);
}

}  // namespace
}  // namespace svc
}  // namespace linesearch

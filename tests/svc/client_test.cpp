// svc/client: the resilient wire client.  The contract under test is
// the one the chaos differential pins — the client NEVER returns a
// wrong answer: every call ends in either the server's exact intended
// response bytes or a structured failure.  Scripted fake transports pin
// the retry/deadline/corruption-detection paths one at a time; the
// chaos loopback then hammers the whole loop across seeds.
#include "svc/client.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "svc/chaos.hpp"
#include "svc/server.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace svc {
namespace {

ClientOptions fast_options() {
  ClientOptions options;
  options.sleep_on_backoff = false;  // logical time in tests
  options.request_timeout_ms = 50;
  return options;
}

/// A transport whose every connection replays a scripted byte sequence.
/// Each inner vector is one connection's read results; an empty string
/// means "closed".
class ScriptedTransport final : public ClientTransport {
 public:
  explicit ScriptedTransport(std::vector<std::vector<std::string>> connections)
      : connections_(std::move(connections)) {}

  bool connect() override {
    if (next_connection_ >= connections_.size()) return false;
    reads_ = connections_[next_connection_++];
    next_read_ = 0;
    connected_ = true;
    return true;
  }
  [[nodiscard]] bool connected() const override { return connected_; }
  bool send_bytes(const std::string& data) override {
    sent_ += data;
    return connected_;
  }
  ReadStatus read_some(std::string& out, int /*timeout_ms*/) override {
    if (!connected_) return ReadStatus::kClosed;
    if (next_read_ >= reads_.size()) return ReadStatus::kTimeout;
    const std::string& chunk = reads_[next_read_++];
    if (chunk.empty()) {
      connected_ = false;
      return ReadStatus::kClosed;
    }
    out += chunk;
    return ReadStatus::kData;
  }
  void disconnect() override { connected_ = false; }

  [[nodiscard]] std::size_t connections_used() const {
    return next_connection_;
  }
  [[nodiscard]] const std::string& sent() const { return sent_; }

 private:
  std::vector<std::vector<std::string>> connections_;
  std::vector<std::string> reads_;
  std::size_t next_read_ = 0;
  std::size_t next_connection_ = 0;
  bool connected_ = false;
  std::string sent_;
};

QueryClient make_client(ClientOptions options,
                        std::vector<std::vector<std::string>> script) {
  return QueryClient(std::move(options), std::make_unique<ScriptedTransport>(
                                             std::move(script)));
}

TEST(RenderRequest, RoundTripsThroughTheServerParser) {
  CrQuery query;
  query.n = 5;
  query.f = 2;
  query.window_hi = 16;
  query.regime = FaultRegime::kCrash;
  query.crash_times = {2.0L, kInfinity, kInfinity, kInfinity, kInfinity};
  const std::string line = render_request(9, query);
  const WireRequest parsed = parse_request(line);
  EXPECT_EQ(parsed.id, 9);
  EXPECT_EQ(parsed.query.n, 5);
  EXPECT_EQ(parsed.query.f, 2);
  EXPECT_EQ(parsed.query.regime, FaultRegime::kCrash);
  ASSERT_EQ(parsed.query.crash_times.size(), 5u);
  EXPECT_EQ(query_key(parsed.query), query_key(query));
}

TEST(QueryClient, FirstTryDeliversTheExactResponseLine) {
  const std::string response = R"({"id":1,"ok":true,"feasible":true})";
  QueryClient client =
      make_client(fast_options(), {{response + "\n"}});
  const ClientResult result =
      client.call_line(R"({"id": 1, "op": "cr"})");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.response, response);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(result.reconnects, 0);
}

TEST(QueryClient, SplitFramesReassembleBeforeTheDeadline) {
  const std::string response = R"({"id":2,"ok":true,"feasible":true})";
  QueryClient client = make_client(
      fast_options(),
      {{response.substr(0, 7), response.substr(7) + "\n"}});
  const ClientResult result =
      client.call_line(R"({"id": 2, "op": "cr"})");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.response, response);
}

TEST(QueryClient, ZeroIdResponseIsProofOfADamagedFrameAndIsRetried) {
  // The server answers unparseable requests with id 0: to a client that
  // sent id 3, that response is provably not an answer to its intact
  // request — retry on a fresh connection, where the true answer waits.
  const std::string damaged = R"({"id":0,"ok":false,"error":"parse"})";
  const std::string good = R"({"id":3,"ok":true,"feasible":true})";
  QueryClient client = make_client(
      fast_options(), {{damaged + "\n"}, {good + "\n"}});
  const ClientResult result =
      client.call_line(R"({"id": 3, "op": "cr"})");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.response, good);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(result.reconnects, 1);
}

TEST(QueryClient, GarbageLinesNeverSurfaceAsAnswers) {
  const std::string good = R"({"id":4,"ok":true,"feasible":true})";
  QueryClient client = make_client(
      fast_options(),
      {{"\x01\x02\x03\n"}, {"{\"id\":4,\"ok\"\n"}, {good + "\n"}});
  const ClientResult result =
      client.call_line(R"({"id": 4, "op": "cr"})");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.response, good);
  EXPECT_EQ(result.attempts, 3);
}

TEST(QueryClient, RetryableServerErrorsAreRetriedOtherErrorsAreFinal) {
  const std::string overloaded =
      R"({"id":5,"ok":false,"error":"overloaded"})";
  const std::string draining =
      R"({"id":5,"ok":false,"error":"draining: server is shutting down"})";
  const std::string genuine =
      R"({"id":5,"ok":false,"error":"svc: bad query"})";
  QueryClient client = make_client(
      fast_options(),
      {{overloaded + "\n"}, {draining + "\n"}, {genuine + "\n"}});
  const ClientResult result =
      client.call_line(R"({"id": 5, "op": "cr"})");
  // The genuine server-side rejection IS the authoritative answer.
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.response, genuine);
  EXPECT_EQ(result.attempts, 3);
}

TEST(QueryClient, ExhaustedAttemptsFailStructurallyNeverWrongly) {
  ClientOptions options = fast_options();
  options.max_attempts = 3;
  options.request_timeout_ms = 5;
  QueryClient client = make_client(options, {{}, {}, {}});
  const ClientResult result =
      client.call_line(R"({"id": 6, "op": "cr"})");
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_NE(result.error.find("attempt(s) exhausted"), std::string::npos)
      << result.error;
  EXPECT_TRUE(result.response.empty());
}

TEST(QueryClient, ClosedConnectionsReconnectUntilTheScriptRunsOut) {
  const std::string good = R"({"id":7,"ok":true,"feasible":true})";
  QueryClient client = make_client(
      fast_options(), {{""}, {""}, {good + "\n"}});
  const ClientResult result =
      client.call_line(R"({"id": 7, "op": "cr"})");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(result.reconnects, 2);
}

TEST(QueryClient, RejectsUnparseableRequestLinesAndBadIds) {
  QueryClient client = make_client(fast_options(), {});
  const ClientResult result = client.call_line("not json");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("bad request line"), std::string::npos);

  QueryClient typed = make_client(fast_options(), {});
  EXPECT_THROW((void)typed.call(0, CrQuery{}), Error);
}

/// The headline property, end to end: through chaotic channels at many
/// seeds, the client's answer — when it answers — is byte-identical to
/// the offline library's rendering.  (The full 120-seed corpus runs in
/// the fuzzer's kChaosWire kind; this is the direct unit-level pin.)
TEST(QueryClient, NeverReturnsAWrongAnswerThroughChaos) {
  CrQuery query;
  query.n = 3;
  query.f = 1;
  query.window_hi = 8;
  const QueryResult direct = evaluate_query_direct(query);

  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    QueryServer server;
    ChaosConfig config;
    config.seed = seed;
    ClientOptions options = fast_options();
    options.max_attempts = config.clean_every + 2;
    options.jitter_seed = seed;
    QueryClient client(options,
                       std::make_unique<ChaosLoopback>(server, config));
    for (long long id = 1; id <= 2; ++id) {
      const ClientResult result = client.call(id, query);
      ASSERT_TRUE(result.ok)
          << "seed " << seed << " id " << id << ": " << result.error;
      EXPECT_EQ(result.response, render_response(id, direct))
          << "seed " << seed << " id " << id;
    }
  }
}

}  // namespace
}  // namespace svc
}  // namespace linesearch

// svc/snapshot: crash-safe warm restarts.  The round trip must be
// value-identical (a snapshot can skip recomputation, never change an
// answered bit) and MRU-order preserving; every corruption mode —
// flipped byte, version mismatch, truncation, malformed record, missing
// file — must reject the WHOLE snapshot and leave the service exactly
// as it was: cold, never half-warm.
#include "svc/snapshot.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "svc/query.hpp"
#include "util/error.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace svc {
namespace {

using verify::value_identical;

std::string temp_path(const char* tag) {
  return "/tmp/ls_snapshot_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".snap";
}

CrQuery make_query(const int n, const int f, const Real window_hi) {
  CrQuery query;
  query.n = n;
  query.f = f;
  query.window_hi = window_hi;
  return query;
}

/// Warm a service with a few distinct results, touched so the MRU
/// order differs from insertion order.  (QueryService owns mutexes and
/// cannot move, so the caller supplies the instance.)
void warm(QueryService& service) {
  (void)service.evaluate(make_query(3, 1, 8));
  (void)service.evaluate(make_query(5, 2, 8));
  (void)service.evaluate(make_query(5, 3, 8));
  (void)service.evaluate(make_query(3, 1, 8));  // re-touch: now MRU
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::trunc);
  out << bytes;
}

TEST(Snapshot, RoundTripRestoresEveryEntryAndTheMruOrder) {
  QueryService original;
  warm(original);
  const std::vector<QueryService::CacheEntry> before =
      original.export_cache();
  ASSERT_EQ(before.size(), 3u);

  const std::string path = temp_path("roundtrip");
  const SnapshotWriteReport saved = save_snapshot(original, path);
  EXPECT_EQ(saved.entries, 3u);
  EXPECT_GT(saved.bytes, 0u);

  QueryService restored;
  const SnapshotLoadReport loaded = load_snapshot(restored, path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.entries, 3u);
  EXPECT_EQ(restored.cached_count(), 3u);

  // Same keys, same recency order, value-identical results.
  const std::vector<QueryService::CacheEntry> after =
      restored.export_cache();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].key, before[i].key) << i;
    EXPECT_EQ(after[i].result.feasible, before[i].result.feasible);
    EXPECT_TRUE(value_identical(after[i].result.cr, before[i].result.cr));
    EXPECT_TRUE(
        value_identical(after[i].result.argmax, before[i].result.argmax));
    EXPECT_EQ(after[i].result.probes, before[i].result.probes);
  }

  // The restored cache actually serves: a hot-set query is a hit, not a
  // recomputation.
  const QueryService::Stats cold = restored.stats();
  (void)restored.evaluate(make_query(5, 2, 8));
  const QueryService::Stats warm = restored.stats();
  EXPECT_EQ(warm.cache_hits, cold.cache_hits + 1);
  EXPECT_EQ(warm.evaluations, cold.evaluations);

  std::remove(path.c_str());
}

TEST(Snapshot, RestoreWorksUnderADifferentShardCount) {
  QueryService original;
  warm(original);
  const std::string path = temp_path("reshard");
  (void)save_snapshot(original, path);

  QueryServiceOptions narrow;
  narrow.shard_count = 1;
  QueryService restored(narrow);
  const SnapshotLoadReport loaded = load_snapshot(restored, path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(restored.cached_count(), 3u);
  const QueryService::Stats before = restored.stats();
  (void)restored.evaluate(make_query(3, 1, 8));
  EXPECT_EQ(restored.stats().cache_hits, before.cache_hits + 1);
  std::remove(path.c_str());
}

TEST(Snapshot, RenderOpensWithMagicAndClosesWithChecksum) {
  QueryService service;
  warm(service);
  const std::string snapshot = render_snapshot(service);
  EXPECT_EQ(snapshot.rfind(std::string(kSnapshotMagic) + "\n", 0), 0u);
  const std::size_t checksum_at = snapshot.rfind("checksum:");
  ASSERT_NE(checksum_at, std::string::npos);
  // The recorded FNV-1a 64 covers every byte before the checksum line.
  const std::uint64_t expected =
      fnv1a64(snapshot.substr(0, checksum_at));
  std::ostringstream hex;
  hex << std::hex;
  hex.width(16);
  hex.fill('0');
  hex << expected;
  EXPECT_EQ(snapshot.substr(checksum_at + 9, 16), hex.str());
}

TEST(Snapshot, FlippedByteRejectsTheWholeSnapshot) {
  QueryService original;
  warm(original);
  const std::string path = temp_path("corrupt");
  (void)save_snapshot(original, path);

  std::string bytes = slurp(path);
  const std::size_t victim = bytes.find("\"cr\":");
  ASSERT_NE(victim, std::string::npos);
  bytes[victim + 5] = bytes[victim + 5] == '1' ? '2' : '1';
  spill(path, bytes);

  QueryService restored;
  const SnapshotLoadReport loaded = load_snapshot(restored, path);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("checksum"), std::string::npos)
      << loaded.error;
  // Fail-closed: nothing was imported.
  EXPECT_EQ(restored.cached_count(), 0u);
  std::remove(path.c_str());
}

TEST(Snapshot, VersionMismatchRejects) {
  QueryService original;
  warm(original);
  const std::string path = temp_path("version");
  (void)save_snapshot(original, path);

  std::string bytes = slurp(path);
  const std::string magic = kSnapshotMagic;
  // A future format version with a recomputed, VALID checksum: only the
  // version gate can reject it.
  std::string future = bytes;
  future.replace(0, magic.size(), "linesearch-svc-snapshot/9");
  const std::size_t checksum_at = future.rfind("checksum:");
  ASSERT_NE(checksum_at, std::string::npos);
  std::ostringstream hex;
  hex << std::hex;
  hex.width(16);
  hex.fill('0');
  hex << fnv1a64(future.substr(0, checksum_at));
  future.replace(checksum_at + 9, 16, hex.str());
  spill(path, future);

  QueryService restored;
  const SnapshotLoadReport loaded = load_snapshot(restored, path);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("version"), std::string::npos)
      << loaded.error;
  EXPECT_EQ(restored.cached_count(), 0u);
  std::remove(path.c_str());
}

TEST(Snapshot, TruncationAndMissingFileReject) {
  QueryService original;
  warm(original);
  const std::string path = temp_path("truncated");
  (void)save_snapshot(original, path);
  const std::string bytes = slurp(path);
  spill(path, bytes.substr(0, bytes.size() / 2));

  QueryService restored;
  EXPECT_FALSE(load_snapshot(restored, path).ok);
  EXPECT_EQ(restored.cached_count(), 0u);
  std::remove(path.c_str());

  EXPECT_FALSE(load_snapshot(restored, temp_path("missing")).ok);
  EXPECT_EQ(restored.cached_count(), 0u);
}

TEST(Snapshot, ImportRejectsMalformedKeysWithoutPartialState) {
  QueryService service;
  QueryService::CacheEntry good;
  good.key = query_key(canonicalize_query(make_query(3, 1, 8)));
  good.result.feasible = true;
  good.result.cr = 9;
  QueryService::CacheEntry bad;
  bad.key = "not-a-query-key";
  bad.result = good.result;
  // All-or-nothing: the bad key rejects the batch BEFORE anything lands.
  EXPECT_THROW((void)service.import_cache({good, bad}), Error);
  EXPECT_EQ(service.cached_count(), 0u);
  EXPECT_EQ(service.import_cache({good}), 1u);
  EXPECT_EQ(service.cached_count(), 1u);
}

TEST(Snapshot, SaveIsAtomicNoTmpDebrisSurvives) {
  QueryService service;
  warm(service);
  const std::string path = temp_path("atomic");
  (void)save_snapshot(service, path);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  QueryService restored;
  EXPECT_TRUE(load_snapshot(restored, path).ok);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace svc
}  // namespace linesearch

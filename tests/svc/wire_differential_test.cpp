// The service acceptance grid: verify::diff_server_vs_library must hold
// — every QueryResult field value_identical between the wire round trip
// and evaluate_query_direct, with a byte-identical warm replay — on all
// 41 proportional regime pairs with n <= 12, under every fault regime
// (plain, byzantine, a crash schedule, and probabilistic probe failure
// at a grid-wide convergent p plus a per-pair divergent p whose inf
// expected CR pins the non-finite codec on the wire).  This is the 8th
// differential engine's full-grid certification; the fuzzer samples the
// same engine on random queries.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "eval/validation.hpp"
#include "svc/query.hpp"
#include "util/real.hpp"
#include "verify/differential.hpp"

namespace linesearch {
namespace {

svc::CrQuery grid_query(const int n, const int f,
                        const svc::FaultRegime regime,
                        const Real fault_p = 0) {
  svc::CrQuery query;
  query.n = n;
  query.f = f;
  query.window_hi = 16;
  query.regime = regime;
  query.fault_p = fault_p;
  if (regime == svc::FaultRegime::kCrash) {
    // Deterministic schedule: robot 0 crashes mid-window, the rest stay
    // healthy — detectable everywhere, so the CR stays finite.
    query.crash_times.assign(static_cast<std::size_t>(n), kInfinity);
    query.crash_times[0] = 3.0L;
  }
  return query;
}

void run_grid(const svc::FaultRegime regime, const Real fault_p = 0) {
  const std::vector<std::pair<int, int>> pairs =
      proportional_regime_pairs(12);
  ASSERT_EQ(pairs.size(), 41u);
  for (const auto& [n, f] : pairs) {
    const verify::DifferentialResult result =
        verify::diff_server_vs_library(grid_query(n, f, regime, fault_p));
    EXPECT_TRUE(result.ok())
        << "n=" << n << " f=" << f << ": " << result.message;
    EXPECT_TRUE(result.mismatches.empty()) << "n=" << n << " f=" << f;
  }
}

TEST(SvcAcceptanceGrid, PlainRegimeAllPairs) {
  run_grid(svc::FaultRegime::kNone);
}

TEST(SvcAcceptanceGrid, ByzantineRegimeAllPairs) {
  run_grid(svc::FaultRegime::kByzantine);
}

TEST(SvcAcceptanceGrid, CrashRegimeAllPairs) {
  run_grid(svc::FaultRegime::kCrash);
}

TEST(SvcAcceptanceGrid, ProbabilisticRegimeAllPairsConvergent) {
  // 0.25 sits below the grid's minimum ladder threshold (~0.63 at
  // (3, 1)): every pair's expected CR is finite, and the continuous
  // fault_p parameter must survive the wire codec bit-exactly for the
  // round trip to agree.
  run_grid(svc::FaultRegime::kProbabilistic, 0.25L);
}

TEST(SvcAcceptanceGrid, ProbabilisticDivergentPinsInfOnTheWire) {
  // Past (3, 1)'s threshold the expected CR is inf on both paths; the
  // differential also certifies the warm replay of the "inf" codec.
  const verify::DifferentialResult result = verify::diff_server_vs_library(
      grid_query(3, 1, svc::FaultRegime::kProbabilistic, 0.8L));
  EXPECT_TRUE(result.ok()) << result.message;
  EXPECT_TRUE(result.mismatches.empty());
}

}  // namespace
}  // namespace linesearch

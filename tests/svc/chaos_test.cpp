// svc/chaos: the deterministic wire fault injector.  Scripts must be
// pure functions of (seed, connection, direction); the garbage alphabet
// must stay inside the parser-rejected set that makes the bit-identical
// differential sound; clean_every must guarantee liveness; and the
// stream/loopback event semantics must deliver every non-faulted byte
// in order.
#include "svc/chaos.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "svc/server.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace svc {
namespace {

ChaosConfig seeded(const std::uint64_t seed) {
  ChaosConfig config;
  config.seed = seed;
  return config;
}

TEST(ChaosScript, PureFunctionOfSeedConnectionDirection) {
  const ChaosConfig config = seeded(1234);
  for (std::uint64_t connection = 0; connection < 8; ++connection) {
    for (const int direction : {0, 1}) {
      const std::vector<WireFault> a =
          fault_script(config, connection, direction);
      const std::vector<WireFault> b =
          fault_script(config, connection, direction);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at_byte, b[i].at_byte);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].param, b[i].param);
      }
      // Sorted by offset — the stream consumes them in one pass.
      for (std::size_t i = 1; i < a.size(); ++i) {
        EXPECT_LE(a[i - 1].at_byte, a[i].at_byte);
      }
    }
  }
  // Directions are decorrelated: at least one of the first faulty
  // connections must differ between directions.
  bool differs = false;
  for (std::uint64_t connection = 0; connection < 8 && !differs; ++connection) {
    differs = describe_script(fault_script(config, connection, 0)) !=
              describe_script(fault_script(config, connection, 1));
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosScript, SeedZeroIsTheCleanChannel) {
  const ChaosConfig config = seeded(0);
  for (std::uint64_t connection = 0; connection < 16; ++connection) {
    EXPECT_TRUE(connection_is_clean(config, connection));
    EXPECT_TRUE(fault_script(config, connection, 0).empty());
    EXPECT_TRUE(fault_script(config, connection, 1).empty());
  }
}

TEST(ChaosScript, CleanEveryGuaranteesALiveConnection) {
  const ChaosConfig config = seeded(77);
  int clean = 0;
  for (std::uint64_t connection = 0; connection < 64; ++connection) {
    if (connection_is_clean(config, connection)) {
      ++clean;
      EXPECT_EQ(connection % static_cast<std::uint64_t>(config.clean_every),
                static_cast<std::uint64_t>(config.clean_every) - 1);
      EXPECT_TRUE(fault_script(config, connection, 0).empty());
      EXPECT_TRUE(fault_script(config, connection, 1).empty());
    } else {
      EXPECT_GE(fault_script(config, connection, 0).size(), 1u);
      EXPECT_LE(fault_script(config, connection, 0).size(),
                static_cast<std::size_t>(config.fault_cap));
    }
  }
  EXPECT_EQ(clean, 64 / config.clean_every);
}

TEST(ChaosScript, GarbageStaysInsideTheRejectedAlphabet) {
  const ChaosConfig config = seeded(99);
  const std::string garbage = garbage_bytes(config, 2, 1, 17, 64);
  ASSERT_EQ(garbage.size(), 64u);
  for (const char byte : garbage) {
    const bool allowed =
        byte == '\n' || (byte >= 0x01 && byte <= 0x07);
    EXPECT_TRUE(allowed) << static_cast<int>(byte);
  }
}

TEST(ChaosScript, DescribeScriptNamesEveryFault) {
  EXPECT_EQ(describe_script({}), "clean");
  const std::string text = describe_script(
      {{10, WireFaultKind::kGarbage, 3}, {20, WireFaultKind::kSplit, 0},
       {30, WireFaultKind::kStall, 5}});
  EXPECT_EQ(text, "garbage@10x3,split@20,stall@30x5ms");
  EXPECT_THROW((void)fault_script(seeded(1), 0, 2), Error);
}

/// A stream with no script is a transparent pipe.
TEST(ChaosStream, CleanStreamDeliversEverythingInOrder)
{
  ChaosStream stream(seeded(0), 0, 0);
  std::string delivered;
  for (const ChaosEvent& event : stream.feed("hello ")) {
    ASSERT_EQ(event.kind, ChaosEvent::Kind::kDeliver);
    delivered += event.bytes;
  }
  for (const ChaosEvent& event : stream.feed("world")) {
    ASSERT_EQ(event.kind, ChaosEvent::Kind::kDeliver);
    delivered += event.bytes;
  }
  EXPECT_EQ(delivered, "hello world");
  EXPECT_FALSE(stream.disconnected());
}

/// Hand-built scripts pin each fault's exact byte-level semantics.  The
/// constructor derives scripts from the config, so these go through a
/// seeded config whose realized script is irrelevant — we test the
/// TRANSFORM via feed on crafted configs instead, using the documented
/// kinds one at a time through the loopback-visible surface: offsets
/// land where scheduled, payload bytes are never lost (except past a
/// disconnect), and garbage only ever adds parser-rejected bytes.
TEST(ChaosStream, FaultyStreamNeverLosesPayloadBeforeDisconnect) {
  for (const std::uint64_t seed : {3u, 17u, 85u, 1021u}) {
    for (std::uint64_t connection = 0; connection < 6; ++connection) {
      ChaosStream stream(seeded(seed), connection, 1);
      const std::string payload(256, 'x');  // past script_window
      std::string out;
      bool disconnected = false;
      for (const ChaosEvent& event : stream.feed(payload)) {
        if (event.kind == ChaosEvent::Kind::kDeliver) {
          out += event.bytes;
        } else if (event.kind == ChaosEvent::Kind::kDisconnect) {
          disconnected = true;
        }
      }
      for (const ChaosEvent& event : stream.flush()) {
        if (event.kind == ChaosEvent::Kind::kDeliver) out += event.bytes;
      }
      EXPECT_EQ(disconnected, stream.disconnected());
      // Strip injected garbage (never 'x') and compare the payload
      // bytes that made it through.
      std::string payload_only;
      for (const char byte : out) {
        if (byte == 'x') payload_only += byte;
      }
      if (!disconnected) {
        // Every payload byte must survive a connection that stays up.
        EXPECT_EQ(payload_only.size(), payload.size())
            << "seed " << seed << " connection " << connection;
      } else {
        EXPECT_LE(payload_only.size(), payload.size());
      }
      // After a disconnect the stream is dead.
      if (disconnected) {
        EXPECT_TRUE(stream.feed("more").empty());
      }
    }
  }
}

TEST(ChaosLoopback, CleanChannelRoundTripsTheWireBytes) {
  QueryServer server;
  ChaosLoopback loopback(server, seeded(0));
  ASSERT_TRUE(loopback.connect());
  const std::string request =
      R"({"id": 5, "op": "cr", "n": 3, "f": 1, "window_hi": 8})";
  ASSERT_TRUE(loopback.send_bytes(request + "\n"));
  std::string response;
  ASSERT_EQ(loopback.read_some(response, 100),
            ClientTransport::ReadStatus::kData);
  QueryServer reference;
  EXPECT_EQ(response, reference.handle_line(request) + "\n");
  // Nothing else queued: the next read times out rather than blocking.
  std::string more;
  EXPECT_EQ(loopback.read_some(more, 1),
            ClientTransport::ReadStatus::kTimeout);
  EXPECT_EQ(loopback.connections(), 1u);
}

TEST(ChaosLoopback, EveryFourthConnectionIsClean) {
  QueryServer server;
  ChaosLoopback loopback(server, seeded(42));
  const std::string request =
      R"({"id": 6, "op": "cr", "n": 3, "f": 1, "window_hi": 8})";
  QueryServer reference;
  const std::string expected = reference.handle_line(request) + "\n";
  // Connections 0..3: index 3 (the clean_every-th) must round-trip
  // perfectly whatever the faulty ones did.
  std::string clean_response;
  for (int connection = 0; connection < 4; ++connection) {
    ASSERT_TRUE(loopback.connect());
    if (!loopback.send_bytes(request + "\n")) continue;
    std::string buffer;
    while (loopback.read_some(buffer, 10) ==
           ClientTransport::ReadStatus::kData) {
    }
    if (connection == 3) clean_response = buffer;
  }
  EXPECT_EQ(clean_response, expected);
}

}  // namespace
}  // namespace svc
}  // namespace linesearch

// Tests for sim/zigzag.hpp — Lemma 1 and the cone zig-zag builders.
#include "sim/zigzag.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(ExpansionFactor, KnownValues) {
  EXPECT_NEAR(static_cast<double>(expansion_factor(3)), 2.0, 1e-15);
  EXPECT_NEAR(static_cast<double>(expansion_factor(5.0L / 3)), 4.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(expansion_factor(2)), 3.0, 1e-15);
}

TEST(ExpansionFactor, RejectsBetaAtOrBelowOne) {
  EXPECT_THROW((void)expansion_factor(1), PreconditionError);
  EXPECT_THROW((void)expansion_factor(0.5L), PreconditionError);
}

TEST(BetaForExpansion, InvertsExpansionFactor) {
  for (const Real beta : {1.5L, 2.0L, 3.0L, 7.0L}) {
    EXPECT_NEAR(
        static_cast<double>(beta_for_expansion(expansion_factor(beta))),
        static_cast<double>(beta), 1e-12);
  }
}

TEST(ConeArrival, BetaTimesAbs) {
  EXPECT_EQ(cone_arrival_time(3, 2), 6.0L);
  EXPECT_EQ(cone_arrival_time(3, -2), 6.0L);
}

TEST(TurningPointNeighbors, InverseOfEachOther) {
  const Real beta = 2.5L;
  const Real x = 1.7L;
  EXPECT_NEAR(static_cast<double>(
                  previous_turning_point(beta, next_turning_point(beta, x))),
              static_cast<double>(x), 1e-12);
  EXPECT_LT(next_turning_point(beta, x), 0.0L);  // alternates sides
}

TEST(Lemma1TurningPoints, AlternatingGeometric) {
  // beta = 3 => kappa = 2: 1, -2, 4, -8, 16.
  const std::vector<Real> pts = lemma1_turning_points(3, 1, 5);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_EQ(pts[0], 1.0L);
  EXPECT_NEAR(static_cast<double>(pts[1]), -2.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(pts[2]), 4.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(pts[3]), -8.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(pts[4]), 16.0, 1e-12);
}

TEST(Lemma1TurningPoints, FormulaMatchesDefinition) {
  // x_i = x0 * kappa^i * (-1)^i for arbitrary beta.
  const Real beta = 1.8L;
  const Real kappa = expansion_factor(beta);
  const std::vector<Real> pts = lemma1_turning_points(beta, 0.5L, 6);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Real expected = 0.5L * std::pow(kappa, static_cast<Real>(i)) *
                          ((i % 2 == 0) ? 1 : -1);
    EXPECT_NEAR(static_cast<double>(pts[i]), static_cast<double>(expected),
                1e-10);
  }
}

TEST(MakeConeZigzag, StartsOnConeBoundary) {
  const Trajectory t =
      make_cone_zigzag({.beta = 3, .first_turn = 1, .min_coverage = 8});
  EXPECT_EQ(t.start_time(), 3.0L);  // beta * |x0|
  EXPECT_EQ(t.start_position(), 1.0L);
}

TEST(MakeConeZigzag, EveryTurnOnConeBoundary) {
  const Real beta = 2.2L;
  const Trajectory t =
      make_cone_zigzag({.beta = beta, .first_turn = -0.7L, .min_coverage = 30});
  for (const Waypoint& w : t.turning_waypoints()) {
    EXPECT_NEAR(static_cast<double>(w.time),
                static_cast<double>(beta * std::fabs(w.position)), 1e-9);
  }
}

TEST(MakeConeZigzag, UnitSpeedLegs) {
  const Trajectory t =
      make_cone_zigzag({.beta = 1.5L, .first_turn = 1, .min_coverage = 50});
  EXPECT_NEAR(static_cast<double>(t.max_speed()), 1.0, 1e-12);
}

TEST(MakeConeZigzag, CoversBothSidesPastMinCoverage) {
  const Trajectory t =
      make_cone_zigzag({.beta = 3, .first_turn = 1, .min_coverage = 10});
  Real best_pos = 0, best_neg = 0;
  for (const Waypoint& w : t.waypoints()) {
    best_pos = std::max(best_pos, w.position);
    best_neg = std::max(best_neg, -w.position);
  }
  EXPECT_GE(best_pos, 10.0L);
  EXPECT_GE(best_neg, 10.0L);
}

TEST(MakeConeZigzag, NegativeSeedWorks) {
  const Trajectory t =
      make_cone_zigzag({.beta = 3, .first_turn = -1, .min_coverage = 10});
  EXPECT_EQ(t.start_position(), -1.0L);
  EXPECT_TRUE(within_cone(t, 3));
}

TEST(MakeConeZigzag, RejectsBadSpecs) {
  EXPECT_THROW((void)make_cone_zigzag({.beta = 1, .first_turn = 1}),
               PreconditionError);
  EXPECT_THROW((void)make_cone_zigzag({.beta = 3, .first_turn = 0}),
               PreconditionError);
  EXPECT_THROW(
      (void)make_cone_zigzag({.beta = 3, .first_turn = 1, .min_coverage = 0}),
      PreconditionError);
}

TEST(MakeOriginZigzag, PrefixAtOneOverBetaSpeed) {
  const Real beta = 3;
  const Trajectory t =
      make_origin_zigzag({.beta = beta, .first_turn = 1, .min_coverage = 8});
  EXPECT_EQ(t.start_time(), 0.0L);
  EXPECT_EQ(t.start_position(), 0.0L);
  // Halfway through the prefix the robot is halfway to the turn.
  EXPECT_NEAR(static_cast<double>(t.position_at(beta / 2)), 0.5, 1e-15);
}

TEST(MakeOriginZigzag, MatchesConeZigzagAfterPrefix) {
  const ZigZagSpec spec{.beta = 2.0L, .first_turn = 1, .min_coverage = 20};
  const Trajectory with_prefix = make_origin_zigzag(spec);
  const Trajectory pure = make_cone_zigzag(spec);
  for (const Real time : {3.0L, 5.0L, 11.0L, 30.0L}) {
    EXPECT_NEAR(static_cast<double>(with_prefix.position_at(time)),
                static_cast<double>(pure.position_at(time)), 1e-10);
  }
}

TEST(WithinCone, AcceptsConeZigzagRejectsEscapee) {
  const Trajectory good =
      make_cone_zigzag({.beta = 3, .first_turn = 1, .min_coverage = 8});
  EXPECT_TRUE(within_cone(good, 3));
  // The same trajectory violates a much narrower cone.
  EXPECT_FALSE(within_cone(good, 30));
  // A robot racing straight out at unit speed leaves any beta > 1 cone.
  const Trajectory racer({{0, 0}, {10, 10}});
  EXPECT_FALSE(within_cone(racer, 3));
}

TEST(WithinCone, OriginPrefixIsInsideCone) {
  // The Definition-4 prefix (speed 1/beta) lies inside the cone: at time
  // t the robot is at x = t/beta, exactly on the boundary.
  const Trajectory t =
      make_origin_zigzag({.beta = 3, .first_turn = 1, .min_coverage = 8});
  EXPECT_TRUE(within_cone(t, 3));
}

TEST(ExtendZigzag, ContinuesFromExistingTurn) {
  TrajectoryBuilder b;
  b.start_at(6, 2);  // on the beta=3 cone at x=2
  extend_zigzag(b, 3, 10);
  const Trajectory t = std::move(b).build();
  EXPECT_TRUE(within_cone(t, 3));
  // Next turns: -4, 8, -16 (kappa = 2).
  const std::vector<Waypoint> turns = t.turning_waypoints();
  ASSERT_GE(turns.size(), 2u);
  EXPECT_NEAR(static_cast<double>(turns[0].position), -4.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(turns[1].position), 8.0, 1e-12);
}

}  // namespace
}  // namespace linesearch

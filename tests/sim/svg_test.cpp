// Tests for sim/svg.hpp.
#include "sim/svg.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/algorithm.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

Fleet small_fleet() {
  return ProportionalAlgorithm(3, 1).build_fleet(30);
}

TEST(Svg, WellFormedDocument) {
  SvgOptions options;
  options.max_time = 30;
  options.max_position = 12;
  const std::string svg = render_svg(small_fleet(), options);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("xmlns"), std::string::npos);
}

TEST(Svg, OnePolylinePerVisibleRobot) {
  SvgOptions options;
  options.max_time = 30;
  options.max_position = 12;
  const std::string svg = render_svg(small_fleet(), options);
  std::size_t count = 0, at = 0;
  while ((at = svg.find("<polyline", at)) != std::string::npos) {
    ++count;
    ++at;
  }
  EXPECT_EQ(count, 3u);
}

TEST(Svg, ConeTargetAndTitleRendered) {
  SvgOptions options;
  options.max_time = 30;
  options.max_position = 12;
  options.cone_beta = 5.0L / 3;
  options.target = 4;
  options.title = "A(3,1) space-time";
  const std::string svg = render_svg(small_fleet(), options);
  EXPECT_NE(svg.find("stroke-dasharray=\"6,4\""), std::string::npos);
  EXPECT_NE(svg.find("#c22"), std::string::npos);
  EXPECT_NE(svg.find("A(3,1) space-time"), std::string::npos);
}

TEST(Svg, RobotStartingBeyondViewIsSkippedGracefully) {
  // A trajectory entirely below the visible time span must not crash.
  const Fleet fleet({Trajectory({{100, 0}, {105, 5}})});
  SvgOptions options;
  options.max_time = 20;
  options.max_position = 10;
  const std::string svg = render_svg(fleet, options);
  EXPECT_EQ(svg.find("<polyline"), std::string::npos);
}

TEST(Svg, LongTrajectoriesClippedAtViewBottom) {
  SvgOptions options;
  options.max_time = 10;  // much shorter than the fleet's horizon
  options.max_position = 12;
  const std::string svg = render_svg(small_fleet(), options);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST(Svg, GuardsOptions) {
  SvgOptions bad;
  bad.max_time = 0;
  EXPECT_THROW((void)render_svg(small_fleet(), bad), PreconditionError);
  SvgOptions tiny;
  tiny.width = 10;
  EXPECT_THROW((void)render_svg(small_fleet(), tiny), PreconditionError);
}

TEST(Svg, WriteFileCreatesDirectories) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "linesearch_svg_test";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "nested" / "fig.svg").string();
  write_svg_file(path, "<svg></svg>\n");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "<svg></svg>\n");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace linesearch

// Tests for sim/faults.hpp — the three fault models.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace linesearch {
namespace {

Fleet staggered_sweepers() {
  return Fleet({Trajectory({{0, 0}, {10, 10}}),
                Trajectory({{2, 0}, {12, 10}}),
                Trajectory({{4, 0}, {14, 10}})});
}

int count_faults(const std::vector<bool>& v) {
  return static_cast<int>(std::count(v.begin(), v.end(), true));
}

TEST(AdversarialFaults, PicksEarliestVisitors) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  const std::vector<bool> faults = model.choose_faults(fleet, 4, 2);
  EXPECT_EQ(faults, (std::vector<bool>{true, true, false}));
}

TEST(AdversarialFaults, ZeroBudgetIsAllReliable) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(count_faults(model.choose_faults(fleet, 4, 0)), 0);
}

TEST(AdversarialFaults, MatchesOrderStatisticDetection) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  for (int f = 0; f < 3; ++f) {
    EXPECT_EQ(detection_time_under(model, fleet, 4, f),
              fleet.detection_time(4, f));
  }
}

TEST(AdversarialFaults, BudgetCappedByFleetSize) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(count_faults(model.choose_faults(fleet, 4, 99)), 3);
}

TEST(AdversarialFaults, NegativeBudgetThrows) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW((void)model.choose_faults(fleet, 4, -1), PreconditionError);
}

TEST(FixedFaults, ReturnsTheGivenSet) {
  FixedFaults model({false, true, false});
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(model.choose_faults(fleet, 4, 1),
            (std::vector<bool>{false, true, false}));
}

TEST(FixedFaults, RejectsSizeMismatchAndOverBudget) {
  const Fleet fleet = staggered_sweepers();
  FixedFaults wrong_size({true});
  EXPECT_THROW((void)wrong_size.choose_faults(fleet, 4, 1),
               PreconditionError);
  FixedFaults over_budget({true, true, false});
  EXPECT_THROW((void)over_budget.choose_faults(fleet, 4, 1),
               PreconditionError);
}

TEST(RandomFaults, ExactBudgetEveryDraw) {
  RandomFaults model(42);
  const Fleet fleet = staggered_sweepers();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(count_faults(model.choose_faults(fleet, 4, 2)), 2);
  }
}

TEST(RandomFaults, DeterministicForFixedSeed) {
  const Fleet fleet = staggered_sweepers();
  RandomFaults a(7), b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.choose_faults(fleet, 4, 1), b.choose_faults(fleet, 4, 1));
  }
}

TEST(RandomFaults, CoversAllSubsetsEventually) {
  RandomFaults model(123);
  const Fleet fleet = staggered_sweepers();
  std::vector<bool> seen(3, false);
  for (int i = 0; i < 100; ++i) {
    const std::vector<bool> faults = model.choose_faults(fleet, 4, 1);
    for (std::size_t r = 0; r < 3; ++r) {
      if (faults[r]) seen[r] = true;
    }
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(RandomFaults, BudgetBeyondFleetThrows) {
  RandomFaults model(1);
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW((void)model.choose_faults(fleet, 4, 4), PreconditionError);
}

TEST(DetectionTimeUnder, RandomNeverBeatsReliableFirstVisit) {
  // Any fault assignment yields detection no earlier than the fault-free
  // first visit and no later than the all-but-one-faulty case.
  RandomFaults model(99);
  const Fleet fleet = staggered_sweepers();
  for (int i = 0; i < 50; ++i) {
    const Real t = detection_time_under(model, fleet, 4, 2);
    EXPECT_GE(t, fleet.detection_time(4, 0));
    EXPECT_LE(t, fleet.detection_time(4, 2));
  }
}

TEST(DetectionTimeUnder, BudgetAtFleetSizeIsUndetectable) {
  // With every robot potentially blind there is no (f+1)-st visitor:
  // the detection time degenerates to infinity rather than throwing.
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  EXPECT_TRUE(std::isinf(detection_time_under(model, fleet, 4, 3)));
  EXPECT_TRUE(std::isinf(detection_time_under(model, fleet, 4, 99)));
}

TEST(FixedFaults, OverBudgetErrorNamesTheCounts) {
  const Fleet fleet = staggered_sweepers();
  FixedFaults over_budget({true, true, false});
  try {
    (void)over_budget.choose_faults(fleet, 4, 1);
    FAIL() << "expected a structured budget error";
  } catch (const PreconditionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("2 faulty robots"), std::string::npos) << what;
    EXPECT_NE(what.find("allows only 1"), std::string::npos) << what;
  }
}

TEST(TruncateAtCrashes, CutsMidLegWithExactInterpolation) {
  const Fleet fleet = staggered_sweepers();
  const Fleet cut = truncate_at_crashes(fleet, {5, kInfinity, kInfinity});
  const auto& waypoints = cut.robot(0).waypoints();
  ASSERT_EQ(waypoints.size(), 2u);
  EXPECT_EQ(waypoints[1].time, 5.0L);
  EXPECT_EQ(waypoints[1].position, 5.0L);
  // Healthy robots are untouched.
  EXPECT_EQ(cut.robot(1).waypoints(), fleet.robot(1).waypoints());
}

TEST(TruncateAtCrashes, CrashBeforeLaunchPinsTheStart) {
  // Robot 1 launches at t = 2; a crash at t = 1 collapses it to its
  // start waypoint (it never moves, never visits anything).
  const Fleet fleet = staggered_sweepers();
  const Fleet cut = truncate_at_crashes(fleet, {kInfinity, 1, kInfinity});
  const auto& waypoints = cut.robot(1).waypoints();
  ASSERT_EQ(waypoints.size(), 1u);
  EXPECT_EQ(waypoints[0].time, 2.0L);
  EXPECT_EQ(waypoints[0].position, 0.0L);
}

TEST(TruncateAtCrashes, CrashAtOrAfterEndLeavesTheRobotAlone) {
  const Fleet fleet = staggered_sweepers();
  const Fleet at_end = truncate_at_crashes(fleet, {10, kInfinity, kInfinity});
  EXPECT_EQ(at_end.robot(0).waypoints(), fleet.robot(0).waypoints());
  const Fleet late = truncate_at_crashes(fleet, {100, kInfinity, kInfinity});
  EXPECT_EQ(late.robot(0).waypoints(), fleet.robot(0).waypoints());
}

TEST(TruncateAtCrashes, CrashDuringAWaitHoldsThePosition) {
  const Fleet fleet({Trajectory({{0, 0}, {1, 1}, {3, 1}, {4, 0}})});
  const Fleet cut = truncate_at_crashes(fleet, {2});
  const auto& waypoints = cut.robot(0).waypoints();
  ASSERT_EQ(waypoints.size(), 3u);
  EXPECT_EQ(waypoints[2].time, 2.0L);
  EXPECT_EQ(waypoints[2].position, 1.0L);
}

TEST(TruncateAtCrashes, GuardsArguments) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW(
      (void)truncate_at_crashes(fleet, {1, 2}), PreconditionError);
  EXPECT_THROW(
      (void)truncate_at_crashes(fleet, {-1, kInfinity, kInfinity}),
      PreconditionError);
}

TEST(CrashFaults, RemovesPostCrashVisits) {
  // Robot 0 would visit x = 4 at t = 4; crashing it at t = 2 hands the
  // first visit to robot 1 (t = 6) and the second to robot 2 (t = 8).
  CrashFaults model({2, kInfinity, kInfinity});
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(detection_time_under(model, fleet, 4, 0), 6.0L);
  EXPECT_EQ(detection_time_under(model, fleet, 4, 1), 8.0L);
  // Only two robots still visit: a budget of two blinds everyone.
  EXPECT_TRUE(std::isinf(detection_time_under(model, fleet, 4, 2)));
  EXPECT_EQ(model.name(), "crash");
}

TEST(CrashFaults, BlindAssignmentTargetsTruncatedVisitors) {
  // The adversary blinds the earliest visitor of the fleet AS IT MOVES:
  // with robot 0 crashed before reaching x = 4, the best blind pick is
  // robot 1, not robot 0.
  CrashFaults model({2, kInfinity, kInfinity});
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(model.choose_faults(fleet, 4, 1),
            (std::vector<bool>{false, true, false}));
}

TEST(CrashFaults, CacheFollowsTheFleetIdentity) {
  CrashFaults model({2, kInfinity, kInfinity});
  const Fleet a = staggered_sweepers();
  const Fleet b({Trajectory({{0, 0}, {20, 20}}),
                 Trajectory({{1, 0}, {21, 20}}),
                 Trajectory({{2, 0}, {22, 20}})});
  EXPECT_EQ(detection_time_under(model, a, 4, 0), 6.0L);
  // Fleet b's robot 0 crashes at t = 2 too (position 2 < 4): first
  // visit at x = 4 comes from robot 1 at t = 5.
  EXPECT_EQ(detection_time_under(model, b, 4, 0), 5.0L);
  EXPECT_EQ(detection_time_under(model, a, 4, 0), 6.0L);
}

TEST(CrashFaults, GuardsArguments) {
  EXPECT_THROW(CrashFaults({-1}), PreconditionError);
  CrashFaults model({1, 2});
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW((void)model.choose_faults(fleet, 4, 1), PreconditionError);
}

TEST(RandomFaults, DrawSequenceIsPinnedToSplitMix64) {
  // Regression for the seeding port: the shuffle behind choose_faults
  // used to run through std::shuffle, whose swap sequence is
  // implementation-defined — seed 7 drew DIFFERENT fault sets on
  // different standard libraries.  The explicit Fisher-Yates on
  // SplitMix64 pins this exact draw sequence on every platform.
  RandomFaults model(7);
  Fleet fleet({Trajectory({{0, 0}, {10, 10}}),
               Trajectory({{0, 0}, {10, 10}}),
               Trajectory({{0, 0}, {10, 10}}),
               Trajectory({{0, 0}, {10, 10}}),
               Trajectory({{0, 0}, {10, 10}})});
  const std::vector<std::vector<bool>> pinned = {
      {false, true, false, false, true},
      {true, false, true, false, false},
      {false, false, true, false, true},
      {false, true, true, false, false},
  };
  for (const std::vector<bool>& draw : pinned) {
    EXPECT_EQ(model.choose_faults(fleet, 4, 2), draw);
  }
}

TEST(ModelNames, AreStable) {
  AdversarialFaults a;
  FixedFaults fx({});
  RandomFaults r(0);
  CrashFaults c({});
  ProbabilisticFaults pr(ProbabilisticFaultConfig{});
  EXPECT_EQ(a.name(), "adversarial");
  EXPECT_EQ(fx.name(), "fixed");
  EXPECT_EQ(r.name(), "random");
  EXPECT_EQ(c.name(), "crash");
  EXPECT_EQ(pr.name(), "probabilistic");
}

// ---------------------------------------------------------------------------
// Probabilistic (per-visit) faults — the property suite.  The coin
// probabilistic_visit_fails(seed, robot, visit, p) is specified as a
// pure O(1) function whose underlying uniform does not depend on p;
// everything below (replayability, per-seed monotone coupling in p,
// robot independence) follows from that spec and must survive any
// reimplementation of the hashing.
// ---------------------------------------------------------------------------

/// Two unit-speed robots oscillating over [-10, 10] with a phase offset:
/// every |x| < 10 is crossed five times per robot, so per-robot visit
/// schedules are long enough for the coin properties to bite.
Fleet bouncing_pair() {
  auto bouncer = [](const Real delay) {
    TrajectoryBuilder builder;
    builder.start_at(0, 0);
    if (delay > 0) builder.wait_until(delay);
    for (const Real turn : {10.0L, -10.0L, 10.0L, -10.0L, 10.0L}) {
      builder.move_to(turn);
    }
    return std::move(builder).build();
  };
  return Fleet({bouncer(0), bouncer(3)});
}

TEST(ProbabilisticCoin, IsAPureFunctionQueryableInAnyOrder) {
  const std::uint64_t seed = 0xfeedface1234ULL;
  const Real p = 0.35L;
  std::vector<std::vector<bool>> forward(3, std::vector<bool>(64));
  for (std::size_t robot = 0; robot < 3; ++robot) {
    for (std::size_t visit = 0; visit < 64; ++visit) {
      forward[robot][visit] =
          probabilistic_visit_fails(seed, robot, visit, p);
    }
  }
  // Reverse interleaved order — no shared stream means no order effects.
  for (std::size_t visit = 64; visit-- > 0;) {
    for (std::size_t robot = 3; robot-- > 0;) {
      EXPECT_EQ(probabilistic_visit_fails(seed, robot, visit, p),
                forward[robot][visit])
          << "robot=" << robot << " visit=" << visit;
    }
  }
  // A different seed realizes a different schedule.
  int differing = 0;
  for (std::size_t visit = 0; visit < 64; ++visit) {
    if (probabilistic_visit_fails(seed + 1, 0, visit, p) !=
        forward[0][visit]) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(ProbabilisticCoin, FailSchedulesAreCoupledMonotoneInP) {
  // The coin compares one p-independent uniform against p, so for a
  // fixed (seed, robot, visit) the fail set can only GROW with p: a
  // visit that fails at p1 fails at every p2 >= p1.
  const std::uint64_t seed = 0x5eedc011ULL;
  const std::vector<Real> grid = {0.1L, 0.3L, 0.5L, 0.7L, 0.9L};
  for (std::size_t robot = 0; robot < 4; ++robot) {
    for (std::size_t visit = 0; visit < 256; ++visit) {
      bool failed_below = false;
      for (const Real p : grid) {
        const bool fails = probabilistic_visit_fails(seed, robot, visit, p);
        EXPECT_TRUE(!failed_below || fails)
            << "fail set shrank at robot=" << robot << " visit=" << visit
            << " p=" << static_cast<double>(p);
        failed_below = fails;
      }
    }
  }
}

TEST(ProbabilisticCoin, MarginalFrequencyTracksP) {
  const Real p = 0.3L;
  const std::size_t trials = 4096;
  int failures = 0;
  for (std::size_t visit = 0; visit < trials; ++visit) {
    if (probabilistic_visit_fails(0xabcdefULL, 5, visit, p)) ++failures;
  }
  const Real freq = static_cast<Real>(failures) / trials;
  // 4 sigma of a Bernoulli(0.3) mean over 4096 draws ~ 0.0287.
  const Real bound = 4 * std::sqrt(p * (1 - p) / trials);
  EXPECT_NEAR(static_cast<double>(freq), static_cast<double>(p),
              static_cast<double>(bound));
}

TEST(ProbabilisticCoin, RobotSchedulesAreIndependent) {
  // Identical marginals under robot permutation AND pairwise
  // decorrelation: every robot index draws Bernoulli(p), and the joint
  // failure frequency of two robots sits at p^2, not p.
  const std::uint64_t seed = 0x0ddba11ULL;
  const Real p = 0.4L;
  const std::size_t trials = 4096;
  std::vector<int> failures(3, 0);
  int joint01 = 0;
  for (std::size_t visit = 0; visit < trials; ++visit) {
    std::vector<bool> fails(3);
    for (std::size_t robot = 0; robot < 3; ++robot) {
      fails[robot] = probabilistic_visit_fails(seed, robot, visit, p);
      if (fails[robot]) ++failures[robot];
    }
    if (fails[0] && fails[1]) ++joint01;
  }
  const Real marginal_bound = 4 * std::sqrt(p * (1 - p) / trials);
  for (std::size_t robot = 0; robot < 3; ++robot) {
    EXPECT_NEAR(static_cast<double>(failures[robot]) / trials,
                static_cast<double>(p),
                static_cast<double>(marginal_bound))
        << "robot=" << robot;
  }
  const Real joint = p * p;
  const Real joint_bound = 4 * std::sqrt(joint * (1 - joint) / trials);
  EXPECT_NEAR(static_cast<double>(joint01) / trials,
              static_cast<double>(joint),
              static_cast<double>(joint_bound));
}

TEST(ProbabilisticFaults, ChooseFaultsReportsNoStaticFaults) {
  ProbabilisticFaults model(ProbabilisticFaultConfig{.p = 0.5L});
  const Fleet fleet = bouncing_pair();
  EXPECT_EQ(model.choose_faults(fleet, 3, 1),
            (std::vector<bool>{false, false}));
  EXPECT_EQ(model.choose_faults(fleet, 3, 0),
            (std::vector<bool>{false, false}));
}

TEST(ProbabilisticFaults, PZeroMatchesTheFaultFreeOracleBitwise) {
  ProbabilisticFaults model(ProbabilisticFaultConfig{.p = 0});
  const Fleet fleet = bouncing_pair();
  for (const Real x : {1.0L, 3.0L, -7.5L, 9.0L}) {
    EXPECT_EQ(detection_time_under(model, fleet, x, 0),
              fleet.detection_time(x, 0))
        << "x=" << static_cast<double>(x);
  }
}

TEST(ProbabilisticFaults, DetectionTimeIsMonotoneInPPerSeed) {
  // The coupling again, now end to end: raising p only removes
  // successful probes from a fixed realized schedule, so the first
  // success can only move later (or to kInfinity).
  const Fleet fleet = bouncing_pair();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Real previous = 0;
    for (const Real p : {0.0L, 0.2L, 0.4L, 0.6L, 0.8L}) {
      ProbabilisticFaults model(
          ProbabilisticFaultConfig{.p = p, .seed = seed});
      const Real t = model.detection_time(fleet, 3, 0);
      EXPECT_GE(t, previous)
          << "seed=" << seed << " p=" << static_cast<double>(p);
      previous = t;
    }
  }
}

TEST(ProbabilisticFaults, POneNeverDetects) {
  ProbabilisticFaults model(ProbabilisticFaultConfig{.p = 1});
  const Fleet fleet = bouncing_pair();
  EXPECT_TRUE(std::isinf(model.detection_time(fleet, 3, 0)));
}

TEST(ProbabilisticFaults, ReplaysBitIdenticallyFromItsConfig) {
  const Fleet fleet = bouncing_pair();
  const ProbabilisticFaultConfig config{.p = 0.6L, .seed = 99};
  ProbabilisticFaults first(config);
  ProbabilisticFaults second(config);
  int seed_sensitive = 0;
  for (const Real x : {1.0L, 3.0L, -7.5L, 9.0L}) {
    const Real t = first.detection_time(fleet, x, 0);
    EXPECT_EQ(second.detection_time(fleet, x, 0), t);
    ProbabilisticFaults other(
        ProbabilisticFaultConfig{.p = 0.6L, .seed = 100});
    if (other.detection_time(fleet, x, 0) != t) ++seed_sensitive;
  }
  // The seed is load-bearing: some target must realize differently.
  EXPECT_GT(seed_sensitive, 0);
}

TEST(ProbabilisticFaults, GuardsArguments) {
  EXPECT_THROW(ProbabilisticFaults(ProbabilisticFaultConfig{.p = -0.1L}),
               PreconditionError);
  EXPECT_THROW(ProbabilisticFaults(ProbabilisticFaultConfig{.p = 1.5L}),
               PreconditionError);
  EXPECT_THROW(ProbabilisticFaults(
                   ProbabilisticFaultConfig{.p = 0.5L, .max_visits = 0}),
               PreconditionError);
  EXPECT_THROW((void)probabilistic_visit_fails(1, 0, 0, -0.5L),
               PreconditionError);
  EXPECT_THROW((void)probabilistic_visit_fails(1, 0, 0, 2.0L),
               PreconditionError);
}

}  // namespace
}  // namespace linesearch

// Tests for sim/faults.hpp — the three fault models.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace linesearch {
namespace {

Fleet staggered_sweepers() {
  return Fleet({Trajectory({{0, 0}, {10, 10}}),
                Trajectory({{2, 0}, {12, 10}}),
                Trajectory({{4, 0}, {14, 10}})});
}

int count_faults(const std::vector<bool>& v) {
  return static_cast<int>(std::count(v.begin(), v.end(), true));
}

TEST(AdversarialFaults, PicksEarliestVisitors) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  const std::vector<bool> faults = model.choose_faults(fleet, 4, 2);
  EXPECT_EQ(faults, (std::vector<bool>{true, true, false}));
}

TEST(AdversarialFaults, ZeroBudgetIsAllReliable) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(count_faults(model.choose_faults(fleet, 4, 0)), 0);
}

TEST(AdversarialFaults, MatchesOrderStatisticDetection) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  for (int f = 0; f < 3; ++f) {
    EXPECT_EQ(detection_time_under(model, fleet, 4, f),
              fleet.detection_time(4, f));
  }
}

TEST(AdversarialFaults, BudgetCappedByFleetSize) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(count_faults(model.choose_faults(fleet, 4, 99)), 3);
}

TEST(AdversarialFaults, NegativeBudgetThrows) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW((void)model.choose_faults(fleet, 4, -1), PreconditionError);
}

TEST(FixedFaults, ReturnsTheGivenSet) {
  FixedFaults model({false, true, false});
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(model.choose_faults(fleet, 4, 1),
            (std::vector<bool>{false, true, false}));
}

TEST(FixedFaults, RejectsSizeMismatchAndOverBudget) {
  const Fleet fleet = staggered_sweepers();
  FixedFaults wrong_size({true});
  EXPECT_THROW((void)wrong_size.choose_faults(fleet, 4, 1),
               PreconditionError);
  FixedFaults over_budget({true, true, false});
  EXPECT_THROW((void)over_budget.choose_faults(fleet, 4, 1),
               PreconditionError);
}

TEST(RandomFaults, ExactBudgetEveryDraw) {
  RandomFaults model(42);
  const Fleet fleet = staggered_sweepers();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(count_faults(model.choose_faults(fleet, 4, 2)), 2);
  }
}

TEST(RandomFaults, DeterministicForFixedSeed) {
  const Fleet fleet = staggered_sweepers();
  RandomFaults a(7), b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.choose_faults(fleet, 4, 1), b.choose_faults(fleet, 4, 1));
  }
}

TEST(RandomFaults, CoversAllSubsetsEventually) {
  RandomFaults model(123);
  const Fleet fleet = staggered_sweepers();
  std::vector<bool> seen(3, false);
  for (int i = 0; i < 100; ++i) {
    const std::vector<bool> faults = model.choose_faults(fleet, 4, 1);
    for (std::size_t r = 0; r < 3; ++r) {
      if (faults[r]) seen[r] = true;
    }
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(RandomFaults, BudgetBeyondFleetThrows) {
  RandomFaults model(1);
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW((void)model.choose_faults(fleet, 4, 4), PreconditionError);
}

TEST(DetectionTimeUnder, RandomNeverBeatsReliableFirstVisit) {
  // Any fault assignment yields detection no earlier than the fault-free
  // first visit and no later than the all-but-one-faulty case.
  RandomFaults model(99);
  const Fleet fleet = staggered_sweepers();
  for (int i = 0; i < 50; ++i) {
    const Real t = detection_time_under(model, fleet, 4, 2);
    EXPECT_GE(t, fleet.detection_time(4, 0));
    EXPECT_LE(t, fleet.detection_time(4, 2));
  }
}

TEST(DetectionTimeUnder, BudgetAtFleetSizeIsUndetectable) {
  // With every robot potentially blind there is no (f+1)-st visitor:
  // the detection time degenerates to infinity rather than throwing.
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  EXPECT_TRUE(std::isinf(detection_time_under(model, fleet, 4, 3)));
  EXPECT_TRUE(std::isinf(detection_time_under(model, fleet, 4, 99)));
}

TEST(FixedFaults, OverBudgetErrorNamesTheCounts) {
  const Fleet fleet = staggered_sweepers();
  FixedFaults over_budget({true, true, false});
  try {
    (void)over_budget.choose_faults(fleet, 4, 1);
    FAIL() << "expected a structured budget error";
  } catch (const PreconditionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("2 faulty robots"), std::string::npos) << what;
    EXPECT_NE(what.find("allows only 1"), std::string::npos) << what;
  }
}

TEST(TruncateAtCrashes, CutsMidLegWithExactInterpolation) {
  const Fleet fleet = staggered_sweepers();
  const Fleet cut = truncate_at_crashes(fleet, {5, kInfinity, kInfinity});
  const auto& waypoints = cut.robot(0).waypoints();
  ASSERT_EQ(waypoints.size(), 2u);
  EXPECT_EQ(waypoints[1].time, 5.0L);
  EXPECT_EQ(waypoints[1].position, 5.0L);
  // Healthy robots are untouched.
  EXPECT_EQ(cut.robot(1).waypoints(), fleet.robot(1).waypoints());
}

TEST(TruncateAtCrashes, CrashBeforeLaunchPinsTheStart) {
  // Robot 1 launches at t = 2; a crash at t = 1 collapses it to its
  // start waypoint (it never moves, never visits anything).
  const Fleet fleet = staggered_sweepers();
  const Fleet cut = truncate_at_crashes(fleet, {kInfinity, 1, kInfinity});
  const auto& waypoints = cut.robot(1).waypoints();
  ASSERT_EQ(waypoints.size(), 1u);
  EXPECT_EQ(waypoints[0].time, 2.0L);
  EXPECT_EQ(waypoints[0].position, 0.0L);
}

TEST(TruncateAtCrashes, CrashAtOrAfterEndLeavesTheRobotAlone) {
  const Fleet fleet = staggered_sweepers();
  const Fleet at_end = truncate_at_crashes(fleet, {10, kInfinity, kInfinity});
  EXPECT_EQ(at_end.robot(0).waypoints(), fleet.robot(0).waypoints());
  const Fleet late = truncate_at_crashes(fleet, {100, kInfinity, kInfinity});
  EXPECT_EQ(late.robot(0).waypoints(), fleet.robot(0).waypoints());
}

TEST(TruncateAtCrashes, CrashDuringAWaitHoldsThePosition) {
  const Fleet fleet({Trajectory({{0, 0}, {1, 1}, {3, 1}, {4, 0}})});
  const Fleet cut = truncate_at_crashes(fleet, {2});
  const auto& waypoints = cut.robot(0).waypoints();
  ASSERT_EQ(waypoints.size(), 3u);
  EXPECT_EQ(waypoints[2].time, 2.0L);
  EXPECT_EQ(waypoints[2].position, 1.0L);
}

TEST(TruncateAtCrashes, GuardsArguments) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW(
      (void)truncate_at_crashes(fleet, {1, 2}), PreconditionError);
  EXPECT_THROW(
      (void)truncate_at_crashes(fleet, {-1, kInfinity, kInfinity}),
      PreconditionError);
}

TEST(CrashFaults, RemovesPostCrashVisits) {
  // Robot 0 would visit x = 4 at t = 4; crashing it at t = 2 hands the
  // first visit to robot 1 (t = 6) and the second to robot 2 (t = 8).
  CrashFaults model({2, kInfinity, kInfinity});
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(detection_time_under(model, fleet, 4, 0), 6.0L);
  EXPECT_EQ(detection_time_under(model, fleet, 4, 1), 8.0L);
  // Only two robots still visit: a budget of two blinds everyone.
  EXPECT_TRUE(std::isinf(detection_time_under(model, fleet, 4, 2)));
  EXPECT_EQ(model.name(), "crash");
}

TEST(CrashFaults, BlindAssignmentTargetsTruncatedVisitors) {
  // The adversary blinds the earliest visitor of the fleet AS IT MOVES:
  // with robot 0 crashed before reaching x = 4, the best blind pick is
  // robot 1, not robot 0.
  CrashFaults model({2, kInfinity, kInfinity});
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(model.choose_faults(fleet, 4, 1),
            (std::vector<bool>{false, true, false}));
}

TEST(CrashFaults, CacheFollowsTheFleetIdentity) {
  CrashFaults model({2, kInfinity, kInfinity});
  const Fleet a = staggered_sweepers();
  const Fleet b({Trajectory({{0, 0}, {20, 20}}),
                 Trajectory({{1, 0}, {21, 20}}),
                 Trajectory({{2, 0}, {22, 20}})});
  EXPECT_EQ(detection_time_under(model, a, 4, 0), 6.0L);
  // Fleet b's robot 0 crashes at t = 2 too (position 2 < 4): first
  // visit at x = 4 comes from robot 1 at t = 5.
  EXPECT_EQ(detection_time_under(model, b, 4, 0), 5.0L);
  EXPECT_EQ(detection_time_under(model, a, 4, 0), 6.0L);
}

TEST(CrashFaults, GuardsArguments) {
  EXPECT_THROW(CrashFaults({-1}), PreconditionError);
  CrashFaults model({1, 2});
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW((void)model.choose_faults(fleet, 4, 1), PreconditionError);
}

TEST(ModelNames, AreStable) {
  AdversarialFaults a;
  FixedFaults fx({});
  RandomFaults r(0);
  CrashFaults c({});
  EXPECT_EQ(a.name(), "adversarial");
  EXPECT_EQ(fx.name(), "fixed");
  EXPECT_EQ(r.name(), "random");
  EXPECT_EQ(c.name(), "crash");
}

}  // namespace
}  // namespace linesearch

// Tests for sim/faults.hpp — the three fault models.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace linesearch {
namespace {

Fleet staggered_sweepers() {
  return Fleet({Trajectory({{0, 0}, {10, 10}}),
                Trajectory({{2, 0}, {12, 10}}),
                Trajectory({{4, 0}, {14, 10}})});
}

int count_faults(const std::vector<bool>& v) {
  return static_cast<int>(std::count(v.begin(), v.end(), true));
}

TEST(AdversarialFaults, PicksEarliestVisitors) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  const std::vector<bool> faults = model.choose_faults(fleet, 4, 2);
  EXPECT_EQ(faults, (std::vector<bool>{true, true, false}));
}

TEST(AdversarialFaults, ZeroBudgetIsAllReliable) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(count_faults(model.choose_faults(fleet, 4, 0)), 0);
}

TEST(AdversarialFaults, MatchesOrderStatisticDetection) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  for (int f = 0; f < 3; ++f) {
    EXPECT_EQ(detection_time_under(model, fleet, 4, f),
              fleet.detection_time(4, f));
  }
}

TEST(AdversarialFaults, BudgetCappedByFleetSize) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(count_faults(model.choose_faults(fleet, 4, 99)), 3);
}

TEST(AdversarialFaults, NegativeBudgetThrows) {
  AdversarialFaults model;
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW((void)model.choose_faults(fleet, 4, -1), PreconditionError);
}

TEST(FixedFaults, ReturnsTheGivenSet) {
  FixedFaults model({false, true, false});
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(model.choose_faults(fleet, 4, 1),
            (std::vector<bool>{false, true, false}));
}

TEST(FixedFaults, RejectsSizeMismatchAndOverBudget) {
  const Fleet fleet = staggered_sweepers();
  FixedFaults wrong_size({true});
  EXPECT_THROW((void)wrong_size.choose_faults(fleet, 4, 1),
               PreconditionError);
  FixedFaults over_budget({true, true, false});
  EXPECT_THROW((void)over_budget.choose_faults(fleet, 4, 1),
               PreconditionError);
}

TEST(RandomFaults, ExactBudgetEveryDraw) {
  RandomFaults model(42);
  const Fleet fleet = staggered_sweepers();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(count_faults(model.choose_faults(fleet, 4, 2)), 2);
  }
}

TEST(RandomFaults, DeterministicForFixedSeed) {
  const Fleet fleet = staggered_sweepers();
  RandomFaults a(7), b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.choose_faults(fleet, 4, 1), b.choose_faults(fleet, 4, 1));
  }
}

TEST(RandomFaults, CoversAllSubsetsEventually) {
  RandomFaults model(123);
  const Fleet fleet = staggered_sweepers();
  std::vector<bool> seen(3, false);
  for (int i = 0; i < 100; ++i) {
    const std::vector<bool> faults = model.choose_faults(fleet, 4, 1);
    for (std::size_t r = 0; r < 3; ++r) {
      if (faults[r]) seen[r] = true;
    }
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(RandomFaults, BudgetBeyondFleetThrows) {
  RandomFaults model(1);
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW((void)model.choose_faults(fleet, 4, 4), PreconditionError);
}

TEST(DetectionTimeUnder, RandomNeverBeatsReliableFirstVisit) {
  // Any fault assignment yields detection no earlier than the fault-free
  // first visit and no later than the all-but-one-faulty case.
  RandomFaults model(99);
  const Fleet fleet = staggered_sweepers();
  for (int i = 0; i < 50; ++i) {
    const Real t = detection_time_under(model, fleet, 4, 2);
    EXPECT_GE(t, fleet.detection_time(4, 0));
    EXPECT_LE(t, fleet.detection_time(4, 2));
  }
}

TEST(ModelNames, AreStable) {
  AdversarialFaults a;
  FixedFaults fx({});
  RandomFaults r(0);
  EXPECT_EQ(a.name(), "adversarial");
  EXPECT_EQ(fx.name(), "fixed");
  EXPECT_EQ(r.name(), "random");
}

}  // namespace
}  // namespace linesearch

// Tests for sim/schedule.hpp + sim/analytic.hpp — the trajectory backend
// layer: DenseSchedule (materialized waypoints) vs AnalyticZigzag /
// AnalyticRay (closed-form, unbounded horizon).
#include "sim/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/analytic.hpp"
#include "sim/trajectory.hpp"
#include "sim/zigzag.hpp"
#include "util/error.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace {

using verify::value_identical;

AnalyticZigzagSpec origin_doubling_spec() {
  // The classic cow-path: (0,0) -> (1,1), then x_{k+1} = -2 x_k.
  AnalyticZigzagSpec spec;
  spec.head = {{0, 0}, {1, 1}};
  spec.kappa = 2;
  return spec;
}

TEST(DenseSchedule, CachesTurningWaypointsAsConstRef) {
  const Trajectory robot =
      make_origin_zigzag({.beta = 3, .first_turn = 1, .min_coverage = 32});
  const std::vector<Waypoint>& first = robot.turning_waypoints();
  const std::vector<Waypoint>& second = robot.turning_waypoints();
  // Satellite: the turn list is computed once at construction and the
  // accessor returns the SAME cached vector, not a fresh copy.
  EXPECT_EQ(&first, &second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.front().position, 1.0L);
}

TEST(AnalyticZigzag, IsUnboundedWithInfiniteHorizon) {
  const AnalyticZigzag schedule(origin_doubling_spec());
  EXPECT_TRUE(schedule.unbounded());
  EXPECT_EQ(schedule.waypoint_count(), kUnboundedCount);
  EXPECT_TRUE(std::isinf(schedule.end_time()));
  EXPECT_TRUE(std::isinf(schedule.max_abs_position()));
}

TEST(AnalyticZigzag, UncappedQueriesThrowOnUnbounded) {
  const AnalyticZigzag schedule(origin_doubling_spec());
  EXPECT_THROW((void)schedule.waypoints(), PreconditionError);
  EXPECT_THROW((void)schedule.turning_waypoints(), PreconditionError);
  EXPECT_THROW((void)schedule.visit_times(1, kUnboundedCount),
               PreconditionError);
}

TEST(AnalyticZigzag, PrefixMatchesDenseCowPathBitForBit) {
  const AnalyticZigzag analytic(origin_doubling_spec());
  // Dense reference: same curve, built with TrajectoryBuilder.
  TrajectoryBuilder builder;
  builder.start_at(0, 0);
  Real turn = 1;
  for (int i = 0; i < 20; ++i) {
    builder.move_to(turn);
    turn *= -2;
  }
  const Trajectory dense = std::move(builder).build();
  const std::vector<Waypoint> prefix = analytic.waypoint_prefix(21);
  ASSERT_EQ(prefix.size(), 21u);
  const std::vector<Waypoint>& reference = dense.waypoints();
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_TRUE(value_identical(prefix[i].time, reference[i].time)) << i;
    EXPECT_TRUE(value_identical(prefix[i].position, reference[i].position))
        << i;
  }
}

TEST(AnalyticZigzag, PositionAtAgreesWithDenseSemantics) {
  const AnalyticZigzag analytic(origin_doubling_spec());
  TrajectoryBuilder builder;
  builder.start_at(0, 0);
  Real turn = 1;
  for (int i = 0; i < 12; ++i) {
    builder.move_to(turn);
    turn *= -2;
  }
  const Trajectory dense = std::move(builder).build();
  for (const Real t : {0.0L, 0.25L, 1.0L, 2.5L, 3.0L, 7.0L, 100.0L,
                       1000.0L}) {
    if (t > dense.end_time()) break;
    EXPECT_TRUE(value_identical(analytic.position_at(t),
                                dense.position_at(t)))
        << "t=" << static_cast<double>(t);
  }
  // Outside the span the query is rejected, exactly like the dense
  // backend.
  EXPECT_THROW((void)analytic.position_at(-1), PreconditionError);
}

TEST(AnalyticZigzag, VisitTimesStreamOnDemand) {
  const AnalyticZigzag analytic(origin_doubling_spec());
  // x = +1 is visited on every positive leg; times must be increasing and
  // available far past any fixed horizon.
  const std::vector<Real> visits = analytic.visit_times(1, 8);
  ASSERT_EQ(visits.size(), 8u);
  for (std::size_t i = 1; i < visits.size(); ++i) {
    EXPECT_GT(visits[i], visits[i - 1]);
  }
  EXPECT_EQ(visits.front(), 1.0L);  // (0,0) -> (1,1) arrives at t = 1
}

TEST(AnalyticZigzag, WindowedTurnQueriesAreFinite) {
  const AnalyticZigzag analytic(origin_doubling_spec());
  // Positive turns: 1, 4, 16, ... (every other ladder rung).
  const std::vector<Real> turns = analytic.turning_magnitudes_in(+1, 1, 20);
  ASSERT_EQ(turns.size(), 3u);
  EXPECT_EQ(turns[0], 1.0L);
  EXPECT_EQ(turns[1], 4.0L);
  EXPECT_EQ(turns[2], 16.0L);
  const std::vector<Real> negative =
      analytic.turning_magnitudes_in(-1, 1, 20);
  ASSERT_EQ(negative.size(), 2u);
  EXPECT_EQ(negative[0], 2.0L);
  EXPECT_EQ(negative[1], 8.0L);
}

TEST(AnalyticZigzag, BarrierModeMaterializesFiniteSchedule) {
  AnalyticZigzagSpec spec = origin_doubling_spec();
  spec.barrier = 10;
  const AnalyticZigzag bounded(spec);
  EXPECT_FALSE(bounded.unbounded());
  EXPECT_LT(bounded.waypoint_count(), kUnboundedCount);
  // Ladder 1, -2, 4, -8; next (+16) would overshoot 10, so the robot
  // sweeps to +10 and back to -10 and stops.
  const std::vector<Waypoint>& waypoints = bounded.waypoints();
  EXPECT_EQ(waypoints.back().position, -10.0L);
  EXPECT_EQ(waypoints[waypoints.size() - 2].position, 10.0L);
  EXPECT_FALSE(std::isinf(bounded.end_time()));
  EXPECT_EQ(bounded.max_abs_position(), 10.0L);
}

TEST(AnalyticZigzag, FootprintIsIndependentOfQueryReach) {
  const AnalyticZigzag analytic(origin_doubling_spec());
  const std::size_t before = analytic.footprint_bytes();
  (void)analytic.turning_magnitudes_in(+1, 1, 1e18L);
  (void)analytic.visit_times(1, 32);
  EXPECT_EQ(analytic.footprint_bytes(), before);
  // A dense build covering the same reach would hold ~60 waypoints of
  // ladder; the analytic state is just the two-waypoint head + scalars.
  EXPECT_LT(before, 512u);
}

TEST(AnalyticRay, ClosedFormVisitAndPosition) {
  const AnalyticRay right(+1);
  EXPECT_EQ(right.position_at(3), 3.0L);
  const std::vector<Real> visit = right.visit_times(5, 4);
  ASSERT_EQ(visit.size(), 1u);  // a ray visits each point exactly once
  EXPECT_EQ(visit.front(), 5.0L);
  EXPECT_TRUE(right.visit_times(-5, 4).empty());  // wrong side: never
  const AnalyticRay left(-1);
  EXPECT_EQ(left.position_at(3), -3.0L);
  EXPECT_TRUE(left.turning_magnitudes_in(+1, 0, 100).empty());
  EXPECT_TRUE(left.turning_magnitudes_in(-1, 0, 100).empty());
}

TEST(Trajectory, WrapsBackendsPolymorphically) {
  const Trajectory dense =
      make_origin_zigzag({.beta = 3, .first_turn = 1, .min_coverage = 16});
  EXPECT_FALSE(dense.unbounded());
  EXPECT_EQ(dense.source().backend_name(), "dense");

  const Trajectory analytic =
      make_analytic_origin_zigzag({.beta = 3, .first_turn = 1});
  EXPECT_TRUE(analytic.unbounded());
  EXPECT_EQ(analytic.source().backend_name(), "analytic-zigzag");
  EXPECT_EQ(analytic.segment_count(), kUnboundedCount);

  // Copies share the immutable backend instead of re-validating it.
  const Trajectory copy = analytic;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.source_ptr().get(), analytic.source_ptr().get());
}

TEST(AnalyticZigzag, RejectsInvalidSpecs) {
  EXPECT_THROW(AnalyticZigzag({.head = {}, .kappa = 2}), PreconditionError);
  EXPECT_THROW(AnalyticZigzag({.head = {{0, 0}}, .kappa = 2}),
               PreconditionError);  // zero seed position
  EXPECT_THROW(AnalyticZigzag({.head = {{0, 0}, {1, 1}}, .kappa = 1}),
               PreconditionError);  // kappa must exceed 1
  EXPECT_THROW(
      AnalyticZigzag({.head = {{0, 0}, {1, 1}}, .kappa = 2, .barrier = 0.5L}),
      PreconditionError);  // barrier inside the seed magnitude
  EXPECT_THROW(AnalyticRay(0), PreconditionError);
}

}  // namespace
}  // namespace linesearch

// Tests for the Byzantine (lying) fault model: seeded lie plans, the
// analytic quorum kernels of sim/faults, the eval-layer quorum CR and
// its reproduced arXiv:1611.08209 bounds over the full regime grid, and
// the adversarial lie-placement game's thread determinism.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "adversary/game.hpp"
#include "adversary/placements.hpp"
#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "eval/byzantine.hpp"
#include "eval/validation.hpp"
#include "util/error.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace {

using verify::value_identical;

Fleet staggered_sweepers() {
  return Fleet({Trajectory({{0, 0}, {10, 10}}),
                Trajectory({{2, 0}, {12, 10}}),
                Trajectory({{4, 0}, {14, 10}}),
                Trajectory({{6, 0}, {16, 10}})});
}

int count_true(const std::vector<bool>& v) {
  return static_cast<int>(std::count(v.begin(), v.end(), true));
}

TEST(LiePlanTest, GeneratorIsAPureFunctionOfSeedRobotsConfig) {
  const LiePlanConfig config{.max_liars = 2,
                             .max_claims_per_liar = 3,
                             .claim_horizon = 20,
                             .claim_extent = 8};
  const LiePlan a = random_lie_plan(42, 5, config);
  const LiePlan b = random_lie_plan(42, 5, config);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a.liar, b.liar);
  ASSERT_EQ(a.claims.size(), b.claims.size());
  for (std::size_t robot = 0; robot < a.claims.size(); ++robot) {
    ASSERT_EQ(a.claims[robot].size(), b.claims[robot].size());
    for (std::size_t k = 0; k < a.claims[robot].size(); ++k) {
      EXPECT_TRUE(value_identical(a.claims[robot][k].time,
                                  b.claims[robot][k].time));
      EXPECT_TRUE(value_identical(a.claims[robot][k].position,
                                  b.claims[robot][k].position));
    }
  }
  // A different seed must produce a different plan (claim values are
  // continuous draws; collision would be a broken stream).
  const LiePlan c = random_lie_plan(43, 5, config);
  bool differs = a.liar != c.liar;
  for (std::size_t robot = 0; !differs && robot < 5; ++robot) {
    differs = a.claims[robot].size() != c.claims[robot].size();
    for (std::size_t k = 0; !differs && k < a.claims[robot].size(); ++k) {
      differs = a.claims[robot][k].time != c.claims[robot][k].time ||
                a.claims[robot][k].position != c.claims[robot][k].position;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(LiePlanTest, PlansRespectTheConfigEnvelope) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const LiePlanConfig config{.max_liars = 3,
                               .max_claims_per_liar = 2,
                               .claim_horizon = 16,
                               .claim_extent = 4};
    const LiePlan plan = random_lie_plan(seed, 6, config);
    ASSERT_EQ(plan.size(), 6u);
    ASSERT_EQ(plan.claims.size(), 6u);
    EXPECT_GE(plan.liar_count(), 1);
    EXPECT_LE(plan.liar_count(), 3);
    for (std::size_t robot = 0; robot < plan.size(); ++robot) {
      if (!plan.liar[robot]) {
        // Honest robots carry no fabrications.
        EXPECT_TRUE(plan.claims[robot].empty());
        continue;
      }
      EXPECT_GE(plan.claims[robot].size(), 1u);
      EXPECT_LE(plan.claims[robot].size(), 2u);
      for (const LieEvent& event : plan.claims[robot]) {
        EXPECT_GT(event.time, 0);
        EXPECT_LT(event.time, 16);
        EXPECT_GE(std::fabs(event.position), 1);
        EXPECT_LT(std::fabs(event.position), 4);
      }
    }
  }
}

TEST(QuorumTimeTest, ExplicitLiarSetIsTheHonestOrderStatistic) {
  const Fleet fleet = staggered_sweepers();
  // First visits of x = 4: robots reach it at 4, 6, 8, 10.
  const std::vector<bool> no_liars(4, false);
  // f = 1: quorum = 2nd distinct honest visit.
  EXPECT_EQ(byzantine_quorum_time(fleet, 4, no_liars, 1), 6);
  // Making the earliest visitor a liar shifts the 2nd honest visit.
  EXPECT_EQ(byzantine_quorum_time(fleet, 4,
                                  {true, false, false, false}, 1),
            8);
  EXPECT_EQ(byzantine_quorum_time(fleet, 4, {true, true, false, false}, 1),
            10);
  // Fewer than f+1 honest robots ever visit: no quorum.
  EXPECT_EQ(byzantine_quorum_time(fleet, 4, {true, true, true, false}, 1),
            kInfinity);
}

TEST(QuorumTimeTest, WorstCaseIsTheDoubledBudgetOrderStatistic) {
  const Fleet fleet = staggered_sweepers();
  for (const Real x : {1.0L, 4.0L, 7.5L}) {
    EXPECT_TRUE(value_identical(byzantine_quorum_time(fleet, x, 1),
                                fleet.detection_time(x, 2)));
  }
}

TEST(QuorumTimeTest, WorstCaseDominatesEveryExplicitLiarSet) {
  // Exhaustive over every liar set of size <= f on a 4-robot fleet: the
  // closed-form worst case is attained and never exceeded.
  const Fleet fleet = staggered_sweepers();
  const int n = 4;
  const int f = 1;
  for (const Real x : {2.0L, 4.0L, 9.0L}) {
    const Real worst = byzantine_quorum_time(fleet, x, f);
    Real attained = 0;
    for (int mask = 0; mask < (1 << n); ++mask) {
      std::vector<bool> liars(n, false);
      int liar_count = 0;
      for (int robot = 0; robot < n; ++robot) {
        if ((mask >> robot) & 1) {
          liars[robot] = true;
          ++liar_count;
        }
      }
      if (liar_count > f) continue;
      const Real quorum = byzantine_quorum_time(fleet, x, liars, f);
      EXPECT_LE(quorum, worst);
      attained = std::max(attained, quorum);
    }
    EXPECT_TRUE(value_identical(attained, worst));
  }
}

TEST(QuorumTimeTest, ImpossibleBelowTwoFPlusOneRobots) {
  // n = 2 < 2f+1 = 3: fewer than f+1 honest corroborators can exist, so
  // no target is ever confirmed.
  const Fleet fleet = Fleet({Trajectory({{0, 0}, {10, 10}}),
                             Trajectory({{2, 0}, {12, 10}})});
  for (const Real x : {1.0L, 4.0L, 8.0L}) {
    EXPECT_EQ(byzantine_quorum_time(fleet, x, 1), kInfinity);
  }
}

TEST(ByzantineFaultsTest, ChoosesThePlansLiarSet) {
  LiePlan plan;
  plan.liar = {false, true, false, false};
  plan.claims = {{}, {{1, 3}}, {}, {}};
  ByzantineFaults model(plan);
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(model.choose_faults(fleet, 4, 1),
            (std::vector<bool>{false, true, false, false}));
  EXPECT_EQ(count_true(model.choose_faults(fleet, 4, 2)), 1);
  // The plan lies more than the permitted budget.
  EXPECT_THROW((void)model.choose_faults(fleet, 4, 0), PreconditionError);
}

TEST(ByzantineFaultsTest, DetectionTimeIsTheQuorumUnderThePlan) {
  LiePlan plan;
  plan.liar = {true, false, false, false};
  plan.claims = {{{0.5L, -2}}, {}, {}, {}};
  ByzantineFaults model(plan);
  const Fleet fleet = staggered_sweepers();
  EXPECT_TRUE(value_identical(
      detection_time_under(model, fleet, 4, 1),
      byzantine_quorum_time(fleet, 4, plan.liar, 1)));
}

TEST(ByzantineFaultsTest, MalformedPlansThrow) {
  LiePlan ragged;
  ragged.liar = {true, false};
  ragged.claims = {{{1, 2}}};  // sizes disagree
  EXPECT_THROW((void)ByzantineFaults(ragged), PreconditionError);

  LiePlan honest_with_claims;
  honest_with_claims.liar = {false, false};
  honest_with_claims.claims = {{{1, 2}}, {}};
  EXPECT_THROW((void)ByzantineFaults(honest_with_claims),
               PreconditionError);

  LiePlan negative_time;
  negative_time.liar = {true, false};
  negative_time.claims = {{{-1, 2}}, {}};
  EXPECT_THROW((void)ByzantineFaults(negative_time), PreconditionError);
}

TEST(ByzantineFaultsTest, LieFreePlanMatchesTheCrashFreePath) {
  // A plan with zero liars degrades to the ordinary sensor-blind model:
  // quorum under the empty liar set is the (f+1)-st distinct visit, the
  // same order statistic the all-healthy CrashFaults path answers.
  const int n = 5;
  const int f = 2;
  const Fleet fleet = ProportionalAlgorithm(n, f).build_fleet(64);
  LiePlan plan;
  plan.liar.assign(n, false);
  plan.claims.assign(n, {});
  ByzantineFaults byzantine(plan);
  CrashFaults crash(std::vector<Real>(n, kInfinity));
  for (const Real x : {1.0L, 3.0L, -5.0L, 12.0L}) {
    EXPECT_TRUE(value_identical(
        detection_time_under(byzantine, fleet, x, f),
        detection_time_under(crash, fleet, x, f)))
        << "x = " << static_cast<double>(x);
  }
}

TEST(ByzantineEvalTest, MeasureReportsInfeasibilityBelowQuorumSize) {
  // (n, f) = (3, 2): n < 2f+1 = 5, quorum unreachable for every target.
  const Fleet fleet = ProportionalAlgorithm(3, 2).build_unbounded_fleet();
  const ByzantineCrResult result =
      measure_byzantine_cr(fleet, 2, {.window_hi = 8});
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.cr, kInfinity);
}

TEST(ByzantineEvalTest, TheoryBoundLivesOnTheFeasibleDiagonal) {
  // n = 2f+1 is the only feasible slice of the proportional regime; the
  // bound there is the Lemma-5 schedule CR at the doubled budget.
  for (int f = 1; f <= 5; ++f) {
    const int n = 2 * f + 1;
    const Real bound = byzantine_theory_cr(n, f);
    ASSERT_TRUE(std::isfinite(bound));
    EXPECT_TRUE(value_identical(
        bound, schedule_cr(n, 2 * f, optimal_beta(n, f))));
  }
  EXPECT_EQ(byzantine_theory_cr(4, 2), kInfinity);  // n < 2f+1
  EXPECT_EQ(byzantine_theory_cr(6, 2), kInfinity);  // off the diagonal
  EXPECT_EQ(byzantine_theory_cr(3, 0), kInfinity);  // f < 1 regime edge
}

TEST(ByzantineEvalTest, SweepCertifiesTheBoundsOnTheFullRegimeGrid) {
  // Every proportional-regime pair up to n = 12 (the full 41-pair grid):
  // infeasible pairs must report an infinite quorum CR, and on the
  // feasible diagonal the measured quorum CR certifies the reproduced
  // upper bound (the probe scan samples the sup from below).
  const std::vector<ByzantineSweepRow> rows =
      byzantine_sweep({.n_max = 12, .window_hi = 16});
  EXPECT_EQ(rows.size(), proportional_regime_pairs(12).size());
  EXPECT_EQ(rows.size(), 41u);
  int diagonal = 0;
  for (const ByzantineSweepRow& row : rows) {
    EXPECT_EQ(row.feasible, row.n >= 2 * row.f + 1)
        << row.n << "," << row.f;
    if (!row.feasible) {
      EXPECT_EQ(row.measured_cr, kInfinity);
      EXPECT_EQ(row.theory_cr, kInfinity);
      continue;
    }
    ASSERT_EQ(row.n, 2 * row.f + 1);  // the regime's feasible slice
    ++diagonal;
    ASSERT_TRUE(std::isfinite(row.measured_cr));
    ASSERT_TRUE(std::isfinite(row.theory_cr));
    EXPECT_LE(row.measured_cr, row.theory_cr * (1 + 1e-9L));
    EXPECT_GE(row.measured_cr, row.theory_cr * (1 - 1e-5L));
    EXPECT_NEAR(static_cast<double>(row.ratio_to_theory), 1.0, 1e-5);
  }
  EXPECT_EQ(diagonal, 5);  // f = 1..5 fit under n <= 12
}

TEST(ByzantineGameTest, NeverConfirmsAFalseClaim) {
  const int n = 3;
  const int f = 1;
  const Real alpha = comfortable_alpha(n, 0.8L);
  const Fleet fleet =
      ProportionalAlgorithm(n, f).build_fleet(largest_placement(alpha) * 4);
  const ByzantineGameResult result = play_byzantine_game(fleet, f, alpha);
  EXPECT_FALSE(result.any_false_confirmed);
  ASSERT_FALSE(result.outcomes.empty());
  for (const LiePlacementOutcome& outcome : result.outcomes) {
    EXPECT_FALSE(outcome.false_claim_confirmed);
    EXPECT_NE(outcome.lie_position, outcome.target);
    EXPECT_EQ(count_true(outcome.liars), f);
    // The quorum the searcher pays is the honest order statistic for
    // the liar set the adversary chose.
    EXPECT_TRUE(value_identical(
        outcome.confirm_time,
        byzantine_quorum_time(fleet, outcome.target, outcome.liars, f)));
  }
  // The forced quorum ratio can never undercut the plain Theorem-2
  // forced ratio: lying strictly strengthens the adversary.
  const GameResult plain = play_theorem2_game(fleet, f, alpha);
  EXPECT_GE(result.forced_ratio, plain.forced_ratio);
}

TEST(ByzantineGameTest, DeterministicAcrossThreadCounts) {
  const int n = 3;
  const int f = 1;
  const Real alpha = comfortable_alpha(n, 0.8L);
  const Fleet fleet =
      ProportionalAlgorithm(n, f).build_fleet(largest_placement(alpha) * 4);
  GameOptions serial;
  serial.threads = 1;
  const ByzantineGameResult reference =
      play_byzantine_game(fleet, f, alpha, serial);
  for (const int threads : {2, 8}) {
    GameOptions options;
    options.threads = threads;
    const ByzantineGameResult candidate =
        play_byzantine_game(fleet, f, alpha, options);
    EXPECT_TRUE(
        value_identical(candidate.forced_ratio, reference.forced_ratio));
    EXPECT_TRUE(value_identical(candidate.best.target,
                                reference.best.target));
    EXPECT_TRUE(value_identical(candidate.best.lie_position,
                                reference.best.lie_position));
    ASSERT_EQ(candidate.outcomes.size(), reference.outcomes.size());
    for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
      EXPECT_TRUE(value_identical(candidate.outcomes[i].confirm_time,
                                  reference.outcomes[i].confirm_time));
      EXPECT_TRUE(value_identical(candidate.outcomes[i].refute_time,
                                  reference.outcomes[i].refute_time));
      EXPECT_EQ(candidate.outcomes[i].liars, reference.outcomes[i].liars);
    }
  }
}

}  // namespace
}  // namespace linesearch

// Tests for sim/fleet.hpp — fault-aware detection-time queries.
#include "sim/fleet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/zigzag.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

// Three staggered rightward sweepers reaching x=4 at t = 4, 6, 8.
Fleet staggered_sweepers() {
  return Fleet({Trajectory({{0, 0}, {10, 10}}),
                Trajectory({{2, 0}, {12, 10}}),
                Trajectory({{4, 0}, {14, 10}})});
}

TEST(FleetCtor, RejectsEmpty) { EXPECT_THROW(Fleet({}), PreconditionError); }

TEST(FleetBasics, SizeHorizonAndAccess) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(fleet.size(), 3u);
  EXPECT_EQ(fleet.horizon(), 14.0L);
  EXPECT_EQ(fleet.robot(1).start_time(), 2.0L);
  EXPECT_THROW((void)fleet.robot(3), PreconditionError);
}

TEST(FirstVisitTimes, PerRobotWithInfinity) {
  const Fleet fleet = staggered_sweepers();
  const std::vector<Real> times = fleet.first_visit_times(4);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], 4.0L);
  EXPECT_EQ(times[1], 6.0L);
  EXPECT_EQ(times[2], 8.0L);
  // Nobody goes left.
  for (const Real t : fleet.first_visit_times(-1)) {
    EXPECT_TRUE(std::isinf(t));
  }
}

TEST(VisitOrder, SortedByTimeTiesByRobot) {
  const Fleet fleet = Fleet({Trajectory({{0, 0}, {10, 10}}),
                             Trajectory({{0, 0}, {10, 10}}),
                             Trajectory({{1, 0}, {11, 10}})});
  const std::vector<VisitRecord> order = fleet.visit_order(5);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].robot, 0u);  // tie with robot 1 broken by id
  EXPECT_EQ(order[1].robot, 1u);
  EXPECT_EQ(order[2].robot, 2u);
}

TEST(DetectionTime, OrderStatisticSemantics) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(fleet.detection_time(4, 0), 4.0L);
  EXPECT_EQ(fleet.detection_time(4, 1), 6.0L);
  EXPECT_EQ(fleet.detection_time(4, 2), 8.0L);
}

TEST(DetectionTime, FaultBudgetAtLeastFleetSizeNeverDetects) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_TRUE(std::isinf(fleet.detection_time(4, 3)));
}

TEST(DetectionTime, UnvisitedPointIsInfinity) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_TRUE(std::isinf(fleet.detection_time(-2, 0)));
}

TEST(DetectionTime, NegativeFaultsThrows) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW((void)fleet.detection_time(4, -1), PreconditionError);
}

TEST(WorstCaseDetector, IdentifiesTheFPlusFirstRobot) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(*fleet.worst_case_detector(4, 1), 1u);
  EXPECT_EQ(*fleet.worst_case_detector(4, 2), 2u);
  EXPECT_FALSE(fleet.worst_case_detector(-2, 0).has_value());
}

TEST(DetectionWithFaults, ExplicitFaultSet) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(fleet.detection_time_with_faults(4, {true, false, false}), 6.0L);
  EXPECT_EQ(fleet.detection_time_with_faults(4, {true, true, false}), 8.0L);
  EXPECT_EQ(fleet.detection_time_with_faults(4, {false, true, true}), 4.0L);
  EXPECT_TRUE(std::isinf(
      fleet.detection_time_with_faults(4, {true, true, true})));
}

TEST(DetectionWithFaults, SizeMismatchThrows) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW((void)fleet.detection_time_with_faults(4, {true}),
               PreconditionError);
}

TEST(DetectionConsistency, ExplicitWorstCaseMatchesOrderStatistic) {
  // Making the first f visitors faulty must reproduce detection_time.
  const Fleet fleet = staggered_sweepers();
  for (int f = 0; f < 3; ++f) {
    std::vector<bool> faulty(3, false);
    const std::vector<VisitRecord> order = fleet.visit_order(4);
    for (int i = 0; i < f; ++i) faulty[order[static_cast<std::size_t>(i)].robot] = true;
    EXPECT_EQ(fleet.detection_time_with_faults(4, faulty),
              fleet.detection_time(4, f));
  }
}

TEST(DistinctVisitors, CountsByDeadline) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_EQ(fleet.distinct_visitors_by(4, 3.9L), 0);
  EXPECT_EQ(fleet.distinct_visitors_by(4, 4.0L), 1);
  EXPECT_EQ(fleet.distinct_visitors_by(4, 7.0L), 2);
  EXPECT_EQ(fleet.distinct_visitors_by(4, 100.0L), 3);
}

TEST(Covers, ZigzagFleetCoversItsExtent) {
  std::vector<Trajectory> robots;
  for (int i = 0; i < 3; ++i) {
    robots.push_back(make_origin_zigzag(
        {.beta = 2, .first_turn = 1 + 0.4L * static_cast<Real>(i),
         .min_coverage = 40}));
  }
  const Fleet fleet{std::move(robots)};
  EXPECT_TRUE(fleet.covers(1, 40, 3));
  EXPECT_TRUE(fleet.covers(1, 40, 1));
}

TEST(Covers, FinalProbeIsPinnedToExtent) {
  // Regression: the geometric grid was built by repeated p *= ratio, and
  // for (min_x=1, extent=3, 3 probes) the accumulated product
  // 1 * sqrt(3) * sqrt(3) lands one ulp PAST 3 — probing a point outside
  // the requested range, which no fleet covering exactly [-3, 3] visits.
  // The final probe must be pinned to `extent` (as geomspace pins hi).
  TrajectoryBuilder builder;
  builder.start_at(0, 0);
  builder.move_to(3).move_to(-3);
  const Fleet fleet{{std::move(builder).build()}};
  EXPECT_TRUE(fleet.covers(1, 3, 1, 3));
  // Sanity: a genuinely uncovered extent still fails.
  EXPECT_FALSE(fleet.covers(1, 4, 1, 3));
}

TEST(Covers, OneSidedFleetFailsCoverage) {
  const Fleet fleet = staggered_sweepers();  // never goes left
  EXPECT_FALSE(fleet.covers(1, 8, 1));
}

TEST(Covers, RequiresMoreVisitorsThanExist) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_FALSE(fleet.covers(1, 8, 4));
}

TEST(Covers, GuardsArguments) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW((void)fleet.covers(0, 8, 1), PreconditionError);
  EXPECT_THROW((void)fleet.covers(2, 1, 1), PreconditionError);
  EXPECT_THROW((void)fleet.covers(1, 8, 0), PreconditionError);
}

TEST(TurningPositions, SortedMagnitudesPerSide) {
  const Fleet fleet =
      Fleet({make_cone_zigzag({.beta = 3, .first_turn = 1, .min_coverage = 10})});
  const std::vector<Real> pos = fleet.turning_positions(+1);
  const std::vector<Real> neg = fleet.turning_positions(-1);
  // Turns: 1 (start, not a turn waypoint), -2, 4, -8, 16 ... depends on
  // coverage; positive turning magnitudes are {4, 16(?)}, negative {2, 8}.
  ASSERT_FALSE(pos.empty());
  ASSERT_FALSE(neg.empty());
  EXPECT_TRUE(std::is_sorted(pos.begin(), pos.end()));
  EXPECT_TRUE(std::is_sorted(neg.begin(), neg.end()));
  EXPECT_NEAR(static_cast<double>(neg[0]), 2.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(pos[0]), 4.0, 1e-12);
}

TEST(TurningPositions, RejectsBadSide) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW((void)fleet.turning_positions(0), PreconditionError);
}

}  // namespace
}  // namespace linesearch

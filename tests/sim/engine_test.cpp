// Tests for sim/engine.hpp — the discrete-event replay, cross-checked
// against Fleet's exact queries.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/recorder.hpp"
#include "sim/zigzag.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

Fleet staggered_sweepers() {
  return Fleet({Trajectory({{0, 0}, {10, 10}}),
                Trajectory({{2, 0}, {12, 10}}),
                Trajectory({{4, 0}, {14, 10}})});
}

TEST(Engine, FaultFreeDetectionAtFirstVisit) {
  const Fleet fleet = staggered_sweepers();
  const Engine engine(fleet);
  const SimulationOutcome outcome = engine.run_fault_free(4);
  EXPECT_TRUE(outcome.detected);
  EXPECT_EQ(outcome.detection_time, 4.0L);
  EXPECT_EQ(*outcome.detector, 0u);
  EXPECT_EQ(outcome.visits_before_detection, 0);
}

TEST(Engine, FaultyVisitsDelayDetection) {
  const Fleet fleet = staggered_sweepers();
  const Engine engine(fleet);
  const SimulationOutcome outcome = engine.run(4, {true, true, false});
  EXPECT_TRUE(outcome.detected);
  EXPECT_EQ(outcome.detection_time, 8.0L);
  EXPECT_EQ(*outcome.detector, 2u);
  EXPECT_EQ(outcome.visits_before_detection, 2);
}

TEST(Engine, AllFaultyNeverDetects) {
  const Fleet fleet = staggered_sweepers();
  const Engine engine(fleet);
  const SimulationOutcome outcome = engine.run(4, {true, true, true});
  EXPECT_FALSE(outcome.detected);
  EXPECT_TRUE(std::isinf(outcome.detection_time));
  EXPECT_FALSE(outcome.detector.has_value());
}

TEST(Engine, MatchesFleetDetectionExactly) {
  // Independent code paths must agree, including on zig-zag fleets.
  std::vector<Trajectory> robots;
  for (int i = 0; i < 3; ++i) {
    robots.push_back(make_origin_zigzag(
        {.beta = 2, .first_turn = 1 + 0.5L * static_cast<Real>(i),
         .min_coverage = 30}));
  }
  const Fleet fleet{std::move(robots)};
  const Engine engine(fleet);
  for (const Real target : {1.5L, -2.0L, 7.0L, -10.0L}) {
    for (const std::vector<bool>& faults :
         {std::vector<bool>{false, false, false},
          std::vector<bool>{true, false, false},
          std::vector<bool>{true, true, false}}) {
      const SimulationOutcome outcome = engine.run(target, faults);
      EXPECT_EQ(outcome.detection_time,
                fleet.detection_time_with_faults(target, faults))
          << "target " << static_cast<double>(target);
    }
  }
}

TEST(Engine, FaultVectorSizeMismatchThrows) {
  const Fleet fleet = staggered_sweepers();
  const Engine engine(fleet);
  EXPECT_THROW((void)engine.run(4, {true}), PreconditionError);
}

TEST(Engine, ObserverSeesChronologicalEvents) {
  const Fleet fleet = staggered_sweepers();
  const Engine engine(fleet);
  EventLog log;
  (void)engine.run(4, {true, false, false}, &log);
  ASSERT_FALSE(log.events().empty());
  for (std::size_t i = 1; i < log.events().size(); ++i) {
    EXPECT_LE(log.events()[i - 1].time, log.events()[i].time);
  }
  // The last event is the detection (stop_at_detection default).
  EXPECT_EQ(log.events().back().kind, EventKind::kDetection);
  EXPECT_EQ(log.events().back().robot, 1u);
}

TEST(Engine, StopAtDetectionSuppressesLaterEvents) {
  const Fleet fleet = staggered_sweepers();
  EventLog stopped, full;
  {
    const Engine engine(fleet);  // default: stop at detection
    (void)engine.run(4, {false, false, false}, &stopped);
  }
  {
    EngineConfig config;
    config.stop_at_detection = false;
    const Engine engine(fleet, config);
    (void)engine.run(4, {false, false, false}, &full);
  }
  EXPECT_LT(stopped.size(), full.size());
}

TEST(Engine, EmitFaultyVisitsToggle) {
  const Fleet fleet = staggered_sweepers();
  EngineConfig config;
  config.emit_faulty_visits = false;
  const Engine engine(fleet, config);
  EventLog log;
  (void)engine.run(4, {true, true, false}, &log);
  EXPECT_TRUE(log.of_kind(EventKind::kTargetVisit).empty());
  EXPECT_EQ(log.of_kind(EventKind::kDetection).size(), 1u);
}

TEST(Engine, HaltEventWhenHorizonReachedWithoutDetection) {
  const Fleet fleet = staggered_sweepers();
  const Engine engine(fleet);
  EventLog log;
  (void)engine.run(-5, {false, false, false}, &log);  // nobody goes left
  ASSERT_FALSE(log.events().empty());
  EXPECT_EQ(log.events().back().kind, EventKind::kHalt);
}

TEST(Engine, CustomHorizonTruncatesReplay) {
  const Fleet fleet = staggered_sweepers();
  EngineConfig config;
  config.horizon = 3.0L;  // before anyone reaches x=4
  const Engine engine(fleet, config);
  const SimulationOutcome outcome = engine.run_fault_free(4);
  EXPECT_FALSE(outcome.detected);
}

TEST(Engine, TurnEventsCarryFaultFlag) {
  const Fleet fleet =
      Fleet({make_origin_zigzag({.beta = 3, .first_turn = 1,
                                 .min_coverage = 8})});
  EngineConfig config;
  config.stop_at_detection = false;
  const Engine engine(fleet, config);
  EventLog log;
  (void)engine.run(100, {true}, &log);  // target out of reach
  const std::vector<Event> turns = log.of_kind(EventKind::kTurn);
  ASSERT_FALSE(turns.empty());
  for (const Event& e : turns) EXPECT_TRUE(e.robot_faulty);
}

TEST(EventToString, ReadableRendering) {
  const Event e{1.5L, EventKind::kDetection, 2, 4.0L, false};
  const std::string s = to_string(e);
  EXPECT_NE(s.find("detection"), std::string::npos);
  EXPECT_NE(s.find("robot 2"), std::string::npos);
  const Event faulty{2.0L, EventKind::kTargetVisit, 1, 4.0L, true};
  EXPECT_NE(to_string(faulty).find("(faulty)"), std::string::npos);
}

}  // namespace
}  // namespace linesearch

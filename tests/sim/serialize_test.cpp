// Tests for sim/serialize.hpp — CSV round-trip of trajectories/fleets.
#include "sim/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/algorithm.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

Fleet sample_fleet() {
  return Fleet({Trajectory({{0, 0}, {1, 1}, {4, -2}}),
                Trajectory({{0, 0}, {2, -2}, {6, 2}})});
}

TEST(Serialize, HeaderAndRowShape) {
  const std::string csv = fleet_to_csv(sample_fleet());
  EXPECT_EQ(csv.rfind("robot,time,position\n", 0), 0u);
  // 3 + 3 waypoints + header = 7 lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
  EXPECT_NE(csv.find("0,0,0\n"), std::string::npos);
  EXPECT_NE(csv.find("1,2,-2\n"), std::string::npos);
}

TEST(Serialize, RoundTripPreservesWaypoints) {
  const Fleet original = sample_fleet();
  const Fleet parsed = fleet_from_csv(fleet_to_csv(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (RobotId id = 0; id < original.size(); ++id) {
    EXPECT_EQ(parsed.robot(id).waypoints(), original.robot(id).waypoints());
  }
}

TEST(Serialize, RoundTripPreservesLongDoublePrecision) {
  // A real schedule fleet with irrational turning points must round-trip
  // to detection-time equality at every probe.
  const ProportionalAlgorithm algo(3, 1);
  const Fleet original = algo.build_fleet(50);
  const Fleet parsed = fleet_from_csv(fleet_to_csv(original));
  for (const Real x : {1.0L, -2.5L, 7.77L, -20.0L}) {
    EXPECT_NEAR(
        static_cast<double>(parsed.detection_time(x, 1)),
        static_cast<double>(original.detection_time(x, 1)), 1e-15);
  }
}

TEST(Serialize, WriteSingleTrajectoryWithCustomId) {
  std::ostringstream out;
  write_trajectory_csv(out, Trajectory({{0, 0}, {3, 3}}), 7);
  EXPECT_EQ(out.str(), "7,0,0\n7,3,3\n");
}

TEST(Serialize, ToleratesCrLfAndBlankLines) {
  const Fleet parsed = fleet_from_csv(
      "robot,time,position\r\n0,0,0\r\n\r\n0,2,2\r\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.robot(0).end_position(), 2.0L);
}

TEST(Serialize, RejectsMissingHeader) {
  EXPECT_THROW((void)fleet_from_csv("0,0,0\n"), PreconditionError);
  EXPECT_THROW((void)fleet_from_csv(""), PreconditionError);
}

TEST(Serialize, RejectsMalformedRows) {
  EXPECT_THROW((void)fleet_from_csv("robot,time,position\n0,1\n"),
               PreconditionError);
  EXPECT_THROW((void)fleet_from_csv("robot,time,position\n0,1,2,3\n"),
               PreconditionError);
  EXPECT_THROW((void)fleet_from_csv("robot,time,position\n0,abc,2\n"),
               PreconditionError);
  EXPECT_THROW((void)fleet_from_csv("robot,time,position\nx,1,2\n"),
               PreconditionError);
}

TEST(Serialize, RejectsNonContiguousRobotIds) {
  EXPECT_THROW(
      (void)fleet_from_csv("robot,time,position\n1,0,0\n1,1,1\n"),
      PreconditionError);
  EXPECT_THROW((void)fleet_from_csv(
                   "robot,time,position\n0,0,0\n0,1,1\n2,0,0\n2,1,1\n"),
               PreconditionError);
}

TEST(Serialize, ParsedTrajectoriesAreRevalidated) {
  // Speed violation hidden in the file must be caught by the Trajectory
  // constructor on parse.
  EXPECT_THROW(
      (void)fleet_from_csv("robot,time,position\n0,0,0\n0,1,5\n"),
      PreconditionError);
  // Non-increasing time as well.
  EXPECT_THROW(
      (void)fleet_from_csv("robot,time,position\n0,1,0\n0,1,0\n"),
      PreconditionError);
}

TEST(Serialize, RejectsEmptyBody) {
  EXPECT_THROW((void)fleet_from_csv("robot,time,position\n"),
               PreconditionError);
}

TEST(Serialize, NonFiniteWaypointFieldsAreRejectedNotMisparsed) {
  // The shared codec parses "inf"/"nan" losslessly, so a non-finite
  // waypoint must be rejected by trajectory validation — not silently
  // truncated or misread as zero.
  EXPECT_THROW(
      (void)fleet_from_csv("robot,time,position\n0,0,0\n0,inf,1\n"),
      PreconditionError);
  EXPECT_THROW(
      (void)fleet_from_csv("robot,time,position\n0,0,0\n0,1,nan\n"),
      PreconditionError);
}

}  // namespace
}  // namespace linesearch

// Tests for sim/recorder.hpp — the event log and the ASCII renderer.
#include "sim/recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/engine.hpp"
#include "sim/zigzag.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(EventLog, RecordsAndFilters) {
  EventLog log;
  log.on_event({1, EventKind::kTurn, 0, 2, false});
  log.on_event({2, EventKind::kDetection, 1, 2, false});
  log.on_event({3, EventKind::kTurn, 1, -4, true});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.of_kind(EventKind::kTurn).size(), 2u);
  EXPECT_EQ(log.of_kind(EventKind::kDetection).size(), 1u);
  EXPECT_TRUE(log.of_kind(EventKind::kHalt).empty());
}

TEST(EventLog, ToTextOneLinePerEvent) {
  EventLog log;
  log.on_event({1, EventKind::kTurn, 0, 2, false});
  log.on_event({2, EventKind::kHalt, 0, 0, false});
  const std::string text = log.to_text();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(EventLog, ClearEmptiesTheLog) {
  EventLog log;
  log.on_event({1, EventKind::kTurn, 0, 2, false});
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(Render, GridDimensionsRespected) {
  const Fleet fleet =
      Fleet({make_origin_zigzag({.beta = 3, .first_turn = 1,
                                 .min_coverage = 8})});
  RenderOptions options;
  options.rows = 10;
  options.columns = 21;
  const std::string art = render_space_time(fleet, options);
  // Header + 10 rows.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 11);
}

TEST(Render, OriginAxisPresent) {
  const Fleet fleet = Fleet({Trajectory::stationary(3, 10)});
  RenderOptions options;
  options.rows = 5;
  options.columns = 11;
  options.max_time = 10;
  options.max_position = 5;
  const std::string art = render_space_time(fleet, options);
  EXPECT_NE(art.find('|'), std::string::npos);
}

TEST(Render, RobotDigitAppears) {
  const Fleet fleet = Fleet({Trajectory::stationary(3, 10)});
  RenderOptions options;
  options.max_time = 10;
  options.max_position = 5;
  const std::string art = render_space_time(fleet, options);
  EXPECT_NE(art.find('0'), std::string::npos);
}

TEST(Render, TargetMarkerOnTopRow) {
  const Fleet fleet = Fleet({Trajectory::stationary(-3, 10)});
  RenderOptions options;
  options.max_time = 10;
  options.max_position = 5;
  options.target = 2;
  const std::string art = render_space_time(fleet, options);
  EXPECT_NE(art.find('T'), std::string::npos);
}

TEST(Render, ConeBoundaryDotsWhenRequested) {
  const Fleet fleet = Fleet({Trajectory::stationary(4, 30)});
  RenderOptions options;
  options.max_time = 30;
  options.max_position = 10;
  options.cone_beta = 3;
  const std::string art = render_space_time(fleet, options);
  EXPECT_NE(art.find('.'), std::string::npos);
}

TEST(Render, RejectsDegenerateGrids) {
  const Fleet fleet = Fleet({Trajectory::stationary(0, 10)});
  RenderOptions bad;
  bad.rows = 1;
  EXPECT_THROW((void)render_space_time(fleet, bad), PreconditionError);
  RenderOptions negative;
  negative.max_time = -1;
  EXPECT_THROW((void)render_space_time(fleet, negative), PreconditionError);
}

TEST(Render, EndToEndWithEngine) {
  // Full pipeline: build A-like fleet, replay with observer, then render.
  std::vector<Trajectory> robots;
  for (int i = 0; i < 2; ++i) {
    robots.push_back(make_origin_zigzag(
        {.beta = 3, .first_turn = 1 + static_cast<Real>(i),
         .min_coverage = 8}));
  }
  const Fleet fleet{std::move(robots)};
  const Engine engine(fleet);
  EventLog log;
  (void)engine.run_fault_free(2, &log);
  EXPECT_GT(log.size(), 0u);
  RenderOptions options;
  options.max_time = 24;
  options.max_position = 8;
  options.cone_beta = 3;
  options.target = 2;
  const std::string art = render_space_time(fleet, options);
  EXPECT_NE(art.find('0'), std::string::npos);
  EXPECT_NE(art.find('1'), std::string::npos);
}

}  // namespace
}  // namespace linesearch

// Tests for sim/trajectory.hpp — the exact-visit substrate everything
// else rests on.
#include "sim/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace linesearch {
namespace {

Trajectory simple_zigzag() {
  // 0 -> 1 -> -2 -> 4 (classic doubling shape at unit speed).
  return Trajectory({{0, 0}, {1, 1}, {4, -2}, {10, 4}});
}

TEST(TrajectoryCtor, RejectsEmptyWaypointList) {
  EXPECT_THROW(Trajectory(std::vector<Waypoint>{}), PreconditionError);
}

TEST(TrajectoryCtor, RejectsNonIncreasingTime) {
  EXPECT_THROW(Trajectory({{0, 0}, {0, 1}}), PreconditionError);
  EXPECT_THROW(Trajectory({{1, 0}, {0, 1}}), PreconditionError);
}

TEST(TrajectoryCtor, RejectsSuperUnitSpeed) {
  EXPECT_THROW(Trajectory({{0, 0}, {1, 1.5L}}), PreconditionError);
}

TEST(TrajectoryCtor, AcceptsExactUnitSpeed) {
  EXPECT_NO_THROW(Trajectory({{0, 0}, {5, 5}}));
}

TEST(TrajectoryCtor, AcceptsSubUnitSpeed) {
  EXPECT_NO_THROW(Trajectory({{0, 0}, {10, 1}}));
}

TEST(TrajectoryCtor, SinglePointIsValid) {
  const Trajectory t({{2, 3}});
  EXPECT_EQ(t.segment_count(), 0u);
  EXPECT_EQ(t.start_time(), 2.0L);
  EXPECT_EQ(t.start_position(), 3.0L);
}

TEST(Stationary, SitsStill) {
  const Trajectory t = Trajectory::stationary(5, 10);
  EXPECT_EQ(t.position_at(0), 5.0L);
  EXPECT_EQ(t.position_at(10), 5.0L);
  EXPECT_EQ(t.max_speed(), 0.0L);
}

TEST(PositionAt, InterpolatesLinearly) {
  const Trajectory t = simple_zigzag();
  EXPECT_EQ(t.position_at(0), 0.0L);
  EXPECT_EQ(t.position_at(1), 1.0L);
  EXPECT_NEAR(static_cast<double>(t.position_at(2.5L)), -0.5, 1e-15);
  EXPECT_EQ(t.position_at(4), -2.0L);
  EXPECT_NEAR(static_cast<double>(t.position_at(7)), 1.0, 1e-15);
  EXPECT_EQ(t.position_at(10), 4.0L);
}

TEST(PositionAt, OutsideSpanThrows) {
  const Trajectory t = simple_zigzag();
  EXPECT_THROW((void)t.position_at(-0.1L), PreconditionError);
  EXPECT_THROW((void)t.position_at(10.1L), PreconditionError);
}

TEST(FirstVisit, OriginVisitedAtStart) {
  const Trajectory t = simple_zigzag();
  const auto visit = t.first_visit_time(0);
  ASSERT_TRUE(visit.has_value());
  EXPECT_EQ(*visit, 0.0L);
}

TEST(FirstVisit, PointOnFirstLeg) {
  const Trajectory t = simple_zigzag();
  EXPECT_EQ(*t.first_visit_time(0.5L), 0.5L);
}

TEST(FirstVisit, PointReachedOnlyOnThirdLeg) {
  const Trajectory t = simple_zigzag();
  // x = 3 is only reached on the last leg: t = 4 + (3 - (-2)) = 9.
  EXPECT_EQ(*t.first_visit_time(3), 9.0L);
}

TEST(FirstVisit, NeverReached) {
  const Trajectory t = simple_zigzag();
  EXPECT_FALSE(t.first_visit_time(5).has_value());
  EXPECT_FALSE(t.first_visit_time(-3).has_value());
}

TEST(VisitTimes, MultipleCrossingsInOrder) {
  const Trajectory t = simple_zigzag();
  // x = 0.5: crossed on leg1 (t=0.5), leg2 (t=1.5), leg3 (t=6.5).
  const std::vector<Real> times = t.visit_times(0.5L);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], 0.5L);
  EXPECT_EQ(times[1], 1.5L);
  EXPECT_EQ(times[2], 6.5L);
}

TEST(VisitTimes, TurningPointTouchedOnceNotTwice) {
  const Trajectory t = simple_zigzag();
  // x = 1 is the turning point between legs 1 and 2: one visit at t=1,
  // then again on leg 3 at t = 4 + 3 = 7.
  const std::vector<Real> times = t.visit_times(1);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 1.0L);
  EXPECT_EQ(times[1], 7.0L);
}

TEST(VisitTimes, MaxCountCapsOutput) {
  const Trajectory t = simple_zigzag();
  EXPECT_EQ(t.visit_times(0.5L, 2).size(), 2u);
  EXPECT_TRUE(t.visit_times(0.5L, 0).empty());
}

TEST(VisitTimes, StationarySegmentVisitsAtSegmentStart) {
  const Trajectory t({{0, 0}, {2, 2}, {5, 2}, {6, 1}});
  const std::vector<Real> times = t.visit_times(2);
  // Arrives at 2 at t=2, waits until t=5 (single visit reported at 2).
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 2.0L);
}

TEST(KthVisit, IndexedFromZero) {
  const Trajectory t = simple_zigzag();
  EXPECT_EQ(*t.kth_visit_time(0.5L, 0), 0.5L);
  EXPECT_EQ(*t.kth_visit_time(0.5L, 2), 6.5L);
  EXPECT_FALSE(t.kth_visit_time(0.5L, 3).has_value());
}

TEST(MaxAbsPosition, TracksExtremes) {
  EXPECT_EQ(simple_zigzag().max_abs_position(), 4.0L);
  EXPECT_EQ(Trajectory({{0, -7}, {1, -6}}).max_abs_position(), 7.0L);
}

TEST(TurningWaypoints, DetectsSignFlipsOnly) {
  const Trajectory t = simple_zigzag();
  const std::vector<Waypoint> turns = t.turning_waypoints();
  ASSERT_EQ(turns.size(), 2u);
  EXPECT_EQ(turns[0].position, 1.0L);
  EXPECT_EQ(turns[1].position, -2.0L);
}

TEST(TurningWaypoints, PauseIsNotATurn) {
  // Move right, wait, keep moving right: no turning point.
  const Trajectory t({{0, 0}, {2, 2}, {3, 2}, {5, 4}});
  EXPECT_TRUE(t.turning_waypoints().empty());
}

TEST(TurningWaypoints, PauseThenReverseIsATurn) {
  const Trajectory t({{0, 0}, {2, 2}, {3, 2}, {5, 0}});
  // The direction flips across the pause; with our definition the flip is
  // detected at the waypoint where motion resumes in the other direction.
  const std::vector<Waypoint> turns = t.turning_waypoints();
  ASSERT_EQ(turns.size(), 1u);
  EXPECT_EQ(turns[0].position, 2.0L);
}

TEST(Describe, MentionsSegmentsAndTurns) {
  const std::string d = simple_zigzag().describe();
  EXPECT_NE(d.find("3 segments"), std::string::npos);
  EXPECT_NE(d.find("2 turns"), std::string::npos);
}

TEST(Builder, BuildsUnitSpeedLegs) {
  const Trajectory t = [] {
    TrajectoryBuilder b;
    b.start_at(0, 0);
    b.move_to(3).move_to(-1);
    return std::move(b).build();
  }();
  EXPECT_EQ(t.end_time(), 7.0L);
  EXPECT_EQ(t.end_position(), -1.0L);
  EXPECT_NEAR(static_cast<double>(t.max_speed()), 1.0, 1e-15);
}

TEST(Builder, MoveToAtEnforcesSpeedAtBuild) {
  TrajectoryBuilder b;
  b.start_at(0, 0);
  b.move_to_at(5, 2);  // speed 2.5 — rejected at build time
  EXPECT_THROW((void)std::move(b).build(), PreconditionError);
}

TEST(Builder, SlowLegAccepted) {
  TrajectoryBuilder b;
  b.start_at(0, 0);
  b.move_to_at(1, 3);  // speed 1/3, Definition-4 prefix style
  const Trajectory t = std::move(b).build();
  EXPECT_NEAR(static_cast<double>(t.position_at(1.5L)), 0.5, 1e-15);
}

TEST(Builder, WaitUntilAddsStationarySegment) {
  TrajectoryBuilder b;
  b.start_at(0, 1);
  b.wait_until(4).move_to(2);
  const Trajectory t = std::move(b).build();
  EXPECT_EQ(t.position_at(3), 1.0L);
  EXPECT_EQ(t.end_time(), 5.0L);
}

TEST(Builder, WaitUntilSameTimeIsNoop) {
  TrajectoryBuilder b;
  b.start_at(0, 1);
  b.wait_until(0);
  b.move_to(2);
  const Trajectory t = std::move(b).build();
  EXPECT_EQ(t.segment_count(), 1u);
}

TEST(Builder, GuardsMisuse) {
  TrajectoryBuilder unstarted;
  EXPECT_THROW(unstarted.move_to(1), PreconditionError);
  EXPECT_THROW((void)std::move(unstarted).build(), PreconditionError);

  TrajectoryBuilder twice;
  twice.start_at(0, 0);
  EXPECT_THROW(twice.start_at(1, 1), PreconditionError);
  EXPECT_THROW(twice.move_to(0), PreconditionError);  // zero-length leg
  EXPECT_THROW(twice.wait_until(-1), PreconditionError);
}

TEST(Builder, CurrentStateTracksLegs) {
  TrajectoryBuilder b;
  b.start_at(0, 0);
  b.move_to(2);
  EXPECT_EQ(b.current_time(), 2.0L);
  EXPECT_EQ(b.current_position(), 2.0L);
}

}  // namespace
}  // namespace linesearch

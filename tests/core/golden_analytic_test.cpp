// Golden dense-vs-analytic equivalence: for every paper strategy and
// every feasible (n, f) regime pair with n <= 12, the analytic backend
// must reproduce the dense build bit for bit — the shared waypoint
// prefix value_identical and measure_cr over the window agreeing field
// by field.  Extents are powers of two: straight-line (ray) backends
// match dense visit arithmetic exactly only at power-of-two extents.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "core/bounded.hpp"
#include "verify/differential.hpp"

namespace linesearch {
namespace {

constexpr Real kExtent = 256;  // power of two, comfortably > window_hi
const CrEvalOptions kWindow{.window_lo = 1, .window_hi = 16};

void expect_equivalent(const SearchStrategy& strategy, const int f) {
  const verify::DifferentialResult result =
      verify::diff_dense_vs_analytic(strategy, kExtent, f, kWindow);
  EXPECT_TRUE(result.applicable) << strategy.name();
  EXPECT_TRUE(result.passed) << strategy.name() << ": " << result.message;
}

std::vector<std::pair<int, int>> regime_pairs_up_to_12() {
  // All (n, f) with f >= 1 and f < n < 2f+2 and n <= 12: 41 pairs.
  std::vector<std::pair<int, int>> pairs;
  for (int f = 1; f <= 11; ++f) {
    for (int n = f + 1; n <= std::min(12, 2 * f + 1); ++n) {
      pairs.emplace_back(n, f);
    }
  }
  return pairs;
}

TEST(GoldenAnalytic, AllRegimePairsProportional) {
  const auto pairs = regime_pairs_up_to_12();
  ASSERT_EQ(pairs.size(), 41u);
  for (const auto& [n, f] : pairs) {
    expect_equivalent(ProportionalAlgorithm(n, f), f);
  }
}

TEST(GoldenAnalytic, AllRegimePairsBounded) {
  for (const auto& [n, f] : regime_pairs_up_to_12()) {
    // Barrier-mode analytic vs the dense bounded builder, at the bound.
    expect_equivalent(BoundedProportional(n, f, kExtent), f);
  }
}

TEST(GoldenAnalytic, BaselineStrategies) {
  for (const auto& [n, f] :
       {std::pair{2, 1}, {3, 1}, {4, 1}, {5, 2}, {6, 2}, {9, 4}}) {
    expect_equivalent(TwoGroupSplit(2 * f + 2, f), f);
    expect_equivalent(TwoGroupSplit(2 * f + 5, f), f);  // alternating extras
    expect_equivalent(GroupDoubling(n, f), f);
    expect_equivalent(ClassicCowPath(n, f, /*mirrored=*/false), f);
    expect_equivalent(ClassicCowPath(n, f, /*mirrored=*/true), f);
    expect_equivalent(StaggeredDoubling(n, f), f);
  }
  for (const auto& [n, f] : {std::pair{2, 1}, {3, 1}, {5, 2}, {9, 4}}) {
    expect_equivalent(UniformOffsetZigzag(n, f), f);  // regime-only
  }
}

TEST(GoldenAnalytic, PerturbedBetaSchedules) {
  for (const Real beta : {1.5L, 2.0L, 3.0L, 5.0L}) {
    expect_equivalent(ProportionalAlgorithm(5, 2, beta), 2);
    expect_equivalent(ProportionalAlgorithm(9, 4, beta), 4);
  }
}

TEST(GoldenAnalytic, UnboundedFleetHasUnboundedHorizonAndO1State) {
  const ProportionalAlgorithm algo(12, 11);
  const Fleet analytic = algo.build_unbounded_fleet();
  EXPECT_TRUE(analytic.unbounded());
  const Fleet dense = algo.build_fleet(kExtent);
  std::size_t analytic_bytes = 0;
  std::size_t dense_bytes = 0;
  for (RobotId id = 0; id < analytic.size(); ++id) {
    analytic_bytes += analytic.robot(id).source().footprint_bytes();
    dense_bytes += dense.robot(id).source().footprint_bytes();
  }
  EXPECT_LT(analytic_bytes, dense_bytes);
}

}  // namespace
}  // namespace linesearch

// Tests for core/bounded.hpp — the known-distance-bound variant.
#include "core/bounded.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "eval/cr_eval.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(Bounded, NameAndAccessors) {
  const BoundedProportional strategy(3, 1, 32);
  EXPECT_EQ(strategy.robot_count(), 3);
  EXPECT_EQ(strategy.fault_budget(), 1);
  EXPECT_EQ(strategy.distance_bound(), 32.0L);
  EXPECT_NE(strategy.name().find("bounded A(3,1)"), std::string::npos);
}

TEST(Bounded, GuardsConstruction) {
  EXPECT_THROW(BoundedProportional(4, 1, 32), PreconditionError);  // regime
  EXPECT_THROW(BoundedProportional(3, 1, 1), PreconditionError);   // D <= 1
}

TEST(Bounded, TrajectoriesNeverLeaveTheArena) {
  const Real D = 20;
  const BoundedProportional strategy(5, 3, D);
  const Fleet fleet = strategy.build_fleet(D);
  for (RobotId id = 0; id < fleet.size(); ++id) {
    EXPECT_LE(fleet.robot(id).max_abs_position(), D * (1 + 1e-12L)) << id;
  }
}

TEST(Bounded, EveryRobotSweepsTheWholeArena) {
  const Real D = 16;
  const BoundedProportional strategy(3, 2, D);
  const Fleet fleet = strategy.build_fleet(D);
  EXPECT_TRUE(fleet.covers(1, D, 3));
}

TEST(Bounded, ExtentBeyondBoundRejected) {
  const BoundedProportional strategy(3, 1, 8);
  EXPECT_THROW((void)strategy.build_fleet(9), PreconditionError);
}

TEST(Bounded, NeverWorseThanUnboundedAnywhere) {
  // Clamping turns at the barrier only ever ADVANCES visits, so the
  // bounded detection time is pointwise <= the unbounded one.
  const int n = 3, f = 1;
  const Real D = 24;
  const Fleet bounded = BoundedProportional(n, f, D).build_fleet(D);
  const Fleet unbounded = ProportionalAlgorithm(n, f).build_fleet(D * 40);
  for (const Real x :
       {1.0L, -1.5L, 3.3L, -7.0L, 12.0L, -20.0L, 23.9L, -23.9L}) {
    EXPECT_LE(bounded.detection_time(x, f),
              unbounded.detection_time(x, f) * (1 + 1e-12L))
        << static_cast<double>(x);
  }
}

TEST(Bounded, MeasuredCrAtMostTheorem1) {
  const int n = 3, f = 1;
  const Real D = 24;
  const BoundedProportional strategy(n, f, D);
  const Fleet fleet = strategy.build_fleet(D);
  const CrEvalResult result =
      measure_cr(fleet, f, {.window_hi = D * 0.999L});
  EXPECT_LE(result.cr, algorithm_cr(n, f) * (1 + 1e-9L));
  EXPECT_GT(result.cr, 1.0L);
}

TEST(Bounded, StrictGainNearTheBarrier) {
  // Targets in the last expansion step before D are found strictly
  // earlier than by the unbounded algorithm.
  const int n = 3, f = 1;
  const Real D = 24;
  const Fleet bounded = BoundedProportional(n, f, D).build_fleet(D);
  const Fleet unbounded = ProportionalAlgorithm(n, f).build_fleet(D * 40);
  const Real x = D * 0.98L;
  EXPECT_LT(bounded.detection_time(x, f),
            unbounded.detection_time(x, f) * 0.999L);
}

TEST(Bounded, SmallArenaDegeneratesGracefully) {
  // D barely above 1: robots basically shuttle between the barriers.
  const BoundedProportional strategy(3, 2, 1.5L);
  const Fleet fleet = strategy.build_fleet(1.4L);
  EXPECT_TRUE(std::isfinite(fleet.detection_time(1.2L, 2)));
  EXPECT_TRUE(std::isfinite(fleet.detection_time(-1.2L, 2)));
}

TEST(Bounded, TheoreticalCrReportsUnboundedEnvelope) {
  const BoundedProportional strategy(5, 2, 10);
  EXPECT_NEAR(static_cast<double>(*strategy.theoretical_cr()),
              static_cast<double>(algorithm_cr(5, 2)), 1e-12);
}

}  // namespace
}  // namespace linesearch

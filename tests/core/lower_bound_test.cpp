// Tests for core/lower_bound.hpp — Theorem 2, Corollary 2 and Table 1's
// lower-bound column.
#include "core/lower_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/series.hpp"
#include "core/competitive.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(Residual, SignStructureAroundRoot) {
  // Strictly increasing from -inf: negative near 3, positive at 9.
  for (const int n : {1, 3, 5, 11, 41}) {
    EXPECT_LT(theorem2_residual(n, 3.0001L), 0.0L) << n;
    EXPECT_GT(theorem2_residual(n, 9.0L), 0.0L) << n;
  }
}

TEST(Residual, GuardsDomain) {
  EXPECT_THROW((void)theorem2_residual(0, 4), PreconditionError);
  EXPECT_THROW((void)theorem2_residual(3, 3), PreconditionError);
}

TEST(Theorem2Alpha, SatisfiesDefiningEquation) {
  for (const int n : {2, 3, 4, 5, 7, 11, 41, 100}) {
    const Real alpha = theorem2_alpha(n);
    // (alpha-1)^n (alpha-3) == 2^(n+1), checked in log space.
    EXPECT_NEAR(static_cast<double>(theorem2_residual(n, alpha)), 0.0, 1e-9)
        << n;
  }
}

// Table 1, "lower bound on comp. ratio" column (non-trivial rows).  The
// paper prints rounded values; our root of (alpha-1)^n (alpha-3) =
// 2^(n+1) is exact, so it must sit AT OR ABOVE every printed value (any
// feasible alpha is a valid bound) and close to it.
TEST(Theorem2Alpha, Table1Values) {
  EXPECT_NEAR(static_cast<double>(theorem2_alpha(3)), 3.76, 5e-3);
  EXPECT_NEAR(static_cast<double>(theorem2_alpha(4)), 3.649, 1e-3);
  EXPECT_NEAR(static_cast<double>(theorem2_alpha(5)), 3.57, 5e-3);
  EXPECT_NEAR(static_cast<double>(theorem2_alpha(11)), 3.345, 2e-3);
  // The paper prints 3.12 for n = 41; the exact root is 3.1357 (a
  // slightly stronger bound — the printed value was rounded down).
  EXPECT_NEAR(static_cast<double>(theorem2_alpha(41)), 3.1357, 5e-4);
  EXPECT_GE(theorem2_alpha(41), 3.12L);
}

TEST(Theorem2Alpha, TextualClaimForThreeRobots) {
  // "Theorem 2 gives a lower bound of ~3.76 ... for 3 robots."
  EXPECT_NEAR(static_cast<double>(theorem2_alpha(3)), 3.7606, 1e-3);
}

TEST(Theorem2Alpha, StrictlyDecreasingInN) {
  Real previous = kInfinity;
  for (int n = 1; n <= 60; ++n) {
    const Real alpha = theorem2_alpha(n);
    EXPECT_LT(alpha, previous) << n;
    EXPECT_GT(alpha, 3.0L) << n;
    previous = alpha;
  }
}

TEST(Theorem2Alpha, ApproachesThreeFromAbove) {
  EXPECT_LT(theorem2_alpha(2000), 3.01L);
  EXPECT_GT(theorem2_alpha(2000), 3.0L);
}

TEST(Corollary2, BoundBelowExactRootForLargeN) {
  // The closed-form asymptotic 3 + 2 ln n/n - 2 ln ln n/n must lower-bound
  // the exact root (it was derived by plugging a feasible alpha).
  for (const int n : {10, 20, 50, 100, 500, 1000}) {
    EXPECT_LE(corollary2_bound(n), theorem2_alpha(n) + 1e-12L) << n;
  }
}

TEST(Corollary2, FeasibilityOfThePluggedAlpha) {
  // The proof takes alpha = 3 + 2(ln n - ln ln n)/n and requires
  // (alpha-1)^n (alpha-3) < 2^(n+1); verify the inequality numerically.
  for (const int n : {10, 50, 100, 1000}) {
    const Real alpha = corollary2_bound(n);
    EXPECT_LT(theorem2_residual(n, alpha), 0.0L) << n;
  }
}

TEST(BestLowerBound, AllThreeRegimes) {
  EXPECT_EQ(best_lower_bound(4, 1), 1.0L);    // n >= 2f+2
  EXPECT_EQ(best_lower_bound(10, 3), 1.0L);
  EXPECT_EQ(best_lower_bound(2, 1), 9.0L);    // n = f+1
  EXPECT_EQ(best_lower_bound(5, 4), 9.0L);
  EXPECT_NEAR(static_cast<double>(best_lower_bound(5, 3)),
              static_cast<double>(theorem2_alpha(5)), 1e-12);
}

TEST(BestLowerBound, Table1Rows) {
  // (3,2), (4,3), (5,4) -> 9; (5,2) and (5,3) share the same 3.57 (the
  // Theorem-2 root depends only on n).
  EXPECT_EQ(best_lower_bound(3, 2), 9.0L);
  EXPECT_EQ(best_lower_bound(4, 3), 9.0L);
  EXPECT_EQ(best_lower_bound(5, 4), 9.0L);
  EXPECT_EQ(best_lower_bound(5, 2), best_lower_bound(5, 3));
}

TEST(BestLowerBound, GuardsArguments) {
  EXPECT_THROW((void)best_lower_bound(3, 3), PreconditionError);
  EXPECT_THROW((void)best_lower_bound(0, 0), PreconditionError);
}

TEST(Placement, ClosedFormAndEq16) {
  const int n = 5;
  const Real alpha = 3.5L;
  // x_i = 2^(i+1)/((alpha-1)^i (alpha-3)).
  EXPECT_NEAR(static_cast<double>(theorem2_placement(n, alpha, 0)),
              2.0 / 0.5, 1e-12);
  // Eq. 16: x_i = (alpha-1)/2 * x_{i+1}.
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_NEAR(static_cast<double>(theorem2_placement(n, alpha, i)),
                static_cast<double>((alpha - 1) / 2 *
                                    theorem2_placement(n, alpha, i + 1)),
                1e-9);
  }
}

TEST(Placement, Eq19LastPlacementExceedsHalfAlphaMinus1) {
  // x_{n-1} > (alpha-1)/2 under the feasibility condition (Eq. 19).
  for (const int n : {3, 5, 11}) {
    const Real alpha = theorem2_alpha(n);  // equality case
    EXPECT_GE(theorem2_placement(n, alpha, n - 1), (alpha - 1) / 2 - 1e-9L);
  }
}

TEST(Placement, IndexGuards) {
  EXPECT_THROW((void)theorem2_placement(3, 3.5L, -1), PreconditionError);
  EXPECT_THROW((void)theorem2_placement(3, 3.5L, 3), PreconditionError);
  EXPECT_THROW((void)theorem2_placement(3, 2.9L, 0), PreconditionError);
}

TEST(UpperVsLower, Theorem1NeverDipsBelowTheLowerBound) {
  // Consistency across the whole grid: the proved upper bound of A(n,f)
  // stays at or above the proved lower bound, with equality exactly at
  // n = f+1 (where A is optimal).
  for (int f = 1; f <= 25; ++f) {
    for (int n = f + 1; n < 2 * f + 2; ++n) {
      const Real upper = algorithm_cr(n, f);
      const Real lower = best_lower_bound(n, f);
      EXPECT_GE(upper, lower - 1e-12L) << n << "," << f;
      if (n == f + 1) {
        EXPECT_NEAR(static_cast<double>(upper), static_cast<double>(lower),
                    1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace linesearch

// Tests for core/algorithm.hpp — A(n, f) as a runnable strategy.
#include "core/algorithm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/competitive.hpp"
#include "core/strategy.hpp"
#include "sim/zigzag.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(Algorithm, NameAndParameters) {
  const ProportionalAlgorithm a(5, 2);
  EXPECT_EQ(a.name(), "A(5,2)");
  EXPECT_EQ(a.robot_count(), 5);
  EXPECT_EQ(a.fault_budget(), 2);
  EXPECT_TRUE(a.uses_optimal_beta());
  EXPECT_NEAR(static_cast<double>(a.beta()),
              static_cast<double>(optimal_beta(5, 2)), 1e-15);
}

TEST(Algorithm, CustomBetaVariant) {
  const ProportionalAlgorithm s(5, 2, 2.0L);
  EXPECT_FALSE(s.uses_optimal_beta());
  EXPECT_EQ(s.beta(), 2.0L);
  EXPECT_NE(s.name().find("S_beta(5)"), std::string::npos);
  EXPECT_NEAR(static_cast<double>(*s.theoretical_cr()),
              static_cast<double>(schedule_cr(5, 2, 2.0L)), 1e-15);
}

TEST(Algorithm, TheoreticalCrIsTheorem1AtOptimalBeta) {
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {2, 1}, {3, 1}, {5, 2}, {5, 3}, {11, 5}}) {
    const ProportionalAlgorithm a(n, f);
    EXPECT_NEAR(static_cast<double>(*a.theoretical_cr()),
                static_cast<double>(algorithm_cr(n, f)), 1e-12);
  }
}

TEST(Algorithm, RejectsOutsideRegime) {
  EXPECT_THROW(ProportionalAlgorithm(4, 1), PreconditionError);
  EXPECT_THROW(ProportionalAlgorithm(3, 3), PreconditionError);
  EXPECT_THROW(ProportionalAlgorithm(5, 2, 1.0L), PreconditionError);
}

TEST(Algorithm, FleetHasNRobotsAllInsideCone) {
  const ProportionalAlgorithm a(5, 3);
  const Fleet fleet = a.build_fleet(40);
  EXPECT_EQ(fleet.size(), 5u);
  for (RobotId id = 0; id < fleet.size(); ++id) {
    EXPECT_TRUE(within_cone(fleet.robot(id), a.beta())) << id;
  }
}

TEST(Algorithm, FleetCoversWindowWithFullMultiplicity) {
  const ProportionalAlgorithm a(3, 2);
  const Fleet fleet = a.build_fleet(30);
  EXPECT_TRUE(fleet.covers(1, 30, 3));
}

TEST(Algorithm, AllRobotsLeaveTheOriginAtTimeZero) {
  const ProportionalAlgorithm a(5, 2);
  const Fleet fleet = a.build_fleet(20);
  for (RobotId id = 0; id < fleet.size(); ++id) {
    EXPECT_EQ(fleet.robot(id).start_time(), 0.0L);
    EXPECT_EQ(fleet.robot(id).start_position(), 0.0L);
  }
}

TEST(Algorithm, RobotZeroReachesOneAtTimeBeta) {
  const ProportionalAlgorithm a(3, 1);
  const Fleet fleet = a.build_fleet(20);
  EXPECT_NEAR(static_cast<double>(fleet.robot(0).position_at(a.beta())), 1.0,
              1e-12);
}

TEST(Algorithm, ExtentGuard) {
  const ProportionalAlgorithm a(3, 1);
  EXPECT_THROW((void)a.build_fleet(1), PreconditionError);
}

TEST(MakeOptimalStrategy, PicksSplitOrProportional) {
  const StrategyPtr split = make_optimal_strategy(6, 2);
  EXPECT_NE(split->name().find("two-group split"), std::string::npos);
  EXPECT_EQ(*split->theoretical_cr(), 1.0L);

  const StrategyPtr prop = make_optimal_strategy(5, 2);
  EXPECT_EQ(prop->name(), "A(5,2)");
  EXPECT_NEAR(static_cast<double>(*prop->theoretical_cr()),
              static_cast<double>(algorithm_cr(5, 2)), 1e-12);
}

TEST(MakeOptimalStrategy, BoundaryAt2FPlus2) {
  EXPECT_EQ(make_optimal_strategy(4, 1)->theoretical_cr(), Real{1});
  EXPECT_NE(make_optimal_strategy(3, 1)->theoretical_cr(), Real{1});
}

TEST(MakeOptimalStrategy, GuardsArguments) {
  EXPECT_THROW((void)make_optimal_strategy(3, 3), PreconditionError);
  EXPECT_THROW((void)make_optimal_strategy(3, -1), PreconditionError);
}

TEST(Algorithm, DoublingSpecialCaseMatchesSingleRobotShape) {
  // A(f+1, f) uses beta = 3 (kappa = 2): robot 0's turning points must be
  // the doubling sequence 1, -2, 4, -8...
  const ProportionalAlgorithm a(2, 1);
  EXPECT_NEAR(static_cast<double>(a.beta()), 3.0, 1e-15);
  const Fleet fleet = a.build_fleet(40);
  const std::vector<Waypoint> turns = fleet.robot(0).turning_waypoints();
  ASSERT_GE(turns.size(), 3u);
  EXPECT_NEAR(static_cast<double>(turns[0].position), 1.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(turns[1].position), -2.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(turns[2].position), 4.0, 1e-12);
}

}  // namespace
}  // namespace linesearch

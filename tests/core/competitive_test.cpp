// Tests for core/competitive.hpp — Lemma 5, Theorem 1, Corollary 1 and
// the Figure-5 curves, pinned to the paper's published numbers (Table 1).
#include "core/competitive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "analysis/optimize.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(Regime, ProportionalRegimePredicate) {
  EXPECT_TRUE(in_proportional_regime(2, 1));   // n = f+1
  EXPECT_TRUE(in_proportional_regime(3, 1));   // n = 2f+1
  EXPECT_TRUE(in_proportional_regime(5, 3));
  EXPECT_FALSE(in_proportional_regime(4, 1));  // n >= 2f+2
  EXPECT_FALSE(in_proportional_regime(3, 3));  // f == n
  EXPECT_FALSE(in_proportional_regime(3, 0));  // f == 0 -> n >= 2f+2
}

TEST(OptimalBeta, ClosedForm) {
  EXPECT_NEAR(static_cast<double>(optimal_beta(2, 1)), 3.0, 1e-15);
  EXPECT_NEAR(static_cast<double>(optimal_beta(3, 1)), 5.0 / 3 - 0, 1e-12);
  EXPECT_NEAR(static_cast<double>(optimal_beta(4, 2)), 2.0, 1e-15);
  EXPECT_NEAR(static_cast<double>(optimal_beta(5, 3)), 11.0 / 5, 1e-12);
}

TEST(OptimalBeta, AlwaysAboveOneInRegime) {
  for (int f = 1; f <= 30; ++f) {
    for (int n = f + 1; n < 2 * f + 2; ++n) {
      EXPECT_GT(optimal_beta(n, f), 1.0L) << n << "," << f;
    }
  }
}

TEST(OptimalBeta, OutsideRegimeThrows) {
  EXPECT_THROW((void)optimal_beta(4, 1), PreconditionError);
  EXPECT_THROW((void)optimal_beta(3, 3), PreconditionError);
}

// Table 1, "comp. ratio of A(n,f)" column.
TEST(Theorem1, Table1CompetitiveRatios) {
  EXPECT_NEAR(static_cast<double>(algorithm_cr(2, 1)), 9.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(algorithm_cr(3, 1)), 5.2333, 5e-4);
  EXPECT_NEAR(static_cast<double>(algorithm_cr(3, 2)), 9.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(algorithm_cr(4, 2)), 6.196, 5e-3);
  EXPECT_NEAR(static_cast<double>(algorithm_cr(4, 3)), 9.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(algorithm_cr(5, 2)), 4.43, 5e-3);
  EXPECT_NEAR(static_cast<double>(algorithm_cr(5, 3)), 6.76, 5e-3);
  EXPECT_NEAR(static_cast<double>(algorithm_cr(5, 4)), 9.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(algorithm_cr(11, 5)), 3.73, 5e-3);
  EXPECT_NEAR(static_cast<double>(algorithm_cr(41, 20)), 3.24, 5e-3);
}

// Table 1, "expansion factor" column.
TEST(ExpansionFactor, Table1Values) {
  EXPECT_NEAR(static_cast<double>(optimal_expansion_factor(2, 1)), 2.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(optimal_expansion_factor(3, 1)), 4.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(optimal_expansion_factor(3, 2)), 2.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(optimal_expansion_factor(4, 2)), 3.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(optimal_expansion_factor(5, 2)), 6.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(optimal_expansion_factor(5, 3)), 8.0 / 3,
              1e-12);
  EXPECT_NEAR(static_cast<double>(optimal_expansion_factor(11, 5)), 12.0,
              1e-12);
  EXPECT_NEAR(static_cast<double>(optimal_expansion_factor(41, 20)), 42.0,
              1e-12);
}

TEST(ExpansionFactor, NEqualsFPlus1IsDoubling) {
  for (int f = 1; f <= 20; ++f) {
    EXPECT_NEAR(static_cast<double>(optimal_expansion_factor(f + 1, f)), 2.0,
                1e-12);
  }
}

TEST(ExpansionFactor, NEquals2FPlus1IsNPlus1) {
  for (int f = 1; f <= 20; ++f) {
    const int n = 2 * f + 1;
    EXPECT_NEAR(static_cast<double>(optimal_expansion_factor(n, f)),
                static_cast<double>(n + 1), 1e-10);
  }
}

TEST(Lemma5, BetaSweepsAgreeWithFormula) {
  // Spot-check the generic-beta CR formula shape.
  const Real cr = schedule_cr(3, 1, 5.0L / 3);
  EXPECT_NEAR(static_cast<double>(cr), (8.0 / 3) * std::cbrt(4.0) + 1,
              1e-10);
}

TEST(Lemma5, OptimalBetaMinimizesNumerically) {
  // Golden-section over beta must land on the closed-form beta* for a
  // spread of (n, f) pairs — Theorem 1's optimization step.
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {2, 1}, {3, 1}, {4, 2}, {5, 3}, {7, 4}, {11, 5}, {9, 8}}) {
    const MinimizeResult r = golden_section(
        [n = n, f = f](const Real beta) { return schedule_cr(n, f, beta); },
        1.000001L, 12);
    EXPECT_NEAR(static_cast<double>(r.x),
                static_cast<double>(optimal_beta(n, f)), 1e-6)
        << "n=" << n << " f=" << f;
    EXPECT_NEAR(static_cast<double>(r.fx),
                static_cast<double>(algorithm_cr(n, f)), 1e-9);
  }
}

TEST(Lemma5, AnyOtherBetaIsWorse) {
  for (const auto& [n, f] :
       std::vector<std::pair<int, int>>{{3, 1}, {5, 3}, {11, 5}}) {
    const Real best = algorithm_cr(n, f);
    const Real beta_star = optimal_beta(n, f);
    for (const Real factor : {0.5L, 0.8L, 1.2L, 2.0L}) {
      const Real beta = 1 + (beta_star - 1) * factor;
      EXPECT_GE(schedule_cr(n, f, beta), best - 1e-12L);
    }
  }
}

TEST(BestKnownCr, TrivialRegimeIsOne) {
  EXPECT_EQ(best_known_cr(4, 1), 1.0L);
  EXPECT_EQ(best_known_cr(10, 2), 1.0L);
  EXPECT_EQ(best_known_cr(2, 0), 1.0L);
}

TEST(BestKnownCr, ProportionalRegimeMatchesTheorem1) {
  EXPECT_NEAR(static_cast<double>(best_known_cr(5, 2)),
              static_cast<double>(algorithm_cr(5, 2)), 1e-15);
}

TEST(BestKnownCr, GuardsArguments) {
  EXPECT_THROW((void)best_known_cr(3, 3), PreconditionError);
  EXPECT_THROW((void)best_known_cr(3, -1), PreconditionError);
}

TEST(HalfFaulty, MatchesTheorem1Specialization) {
  for (int f = 1; f <= 15; ++f) {
    const int n = 2 * f + 1;
    EXPECT_NEAR(static_cast<double>(cr_half_faulty(n)),
                static_cast<double>(algorithm_cr(n, f)), 1e-10)
        << "n=" << n;
  }
}

TEST(HalfFaulty, DecreasesTowardThree) {
  Real previous = kInfinity;
  for (int n = 3; n <= 101; n += 2) {
    const Real cr = cr_half_faulty(n);
    EXPECT_LT(cr, previous);
    EXPECT_GT(cr, 3.0L);
    previous = cr;
  }
  EXPECT_LT(cr_half_faulty(1001), 3.06L);
}

TEST(HalfFaulty, RejectsEvenOrTinyN) {
  EXPECT_THROW((void)cr_half_faulty(4), PreconditionError);
  EXPECT_THROW((void)cr_half_faulty(1), PreconditionError);
}

TEST(Corollary1, SharperCoefficientObservation) {
  // The exact expansion is CR = 3 + (2 ln(n+1) + 2)/n + o(1/n): the
  // normalized coefficient (CR - 3 - 2/n) * n / ln(n+1) converges to 2
  // (matching the LOWER bound's ln-coefficient), which is sharper than
  // Corollary 1's factor-4 envelope.  Checked along a doubling ladder.
  Real previous_gap = kInfinity;
  for (int n = 33; n <= 8193; n = 2 * n - 1) {
    const Real nn = static_cast<Real>(n);
    const Real coefficient =
        (cr_half_faulty(n) - 3 - 2 / nn) * nn / std::log(nn + 1);
    const Real gap = std::fabs(coefficient - 2);
    EXPECT_LT(gap, previous_gap) << n;
    previous_gap = gap;
  }
  EXPECT_LT(previous_gap, 2e-3L);
}

TEST(Corollary1, UpperBoundsHalfFaultyCurveForLargeN) {
  // 3 + 4 ln n / n dominates the exact curve once low-order terms fade.
  for (int n = 31; n <= 501; n += 10) {
    if (n % 2 == 0) continue;
    EXPECT_LE(cr_half_faulty(n), corollary1_bound(n) + 0.02L) << n;
  }
}

TEST(AsymptoticCr, EndpointBehaviour) {
  // a -> 1+: approaches 9 (n = f+1).  a -> 2-: approaches 3 (n = 2f+1).
  EXPECT_NEAR(static_cast<double>(asymptotic_cr(1.0001L)), 9.0, 1e-2);
  EXPECT_NEAR(static_cast<double>(asymptotic_cr(1.9999L)), 3.0, 1e-2);
}

TEST(AsymptoticCr, MonotoneDecreasingInA) {
  Real previous = kInfinity;
  for (Real a = 1.05L; a < 2; a += 0.05L) {
    const Real cr = asymptotic_cr(a);
    EXPECT_LT(cr, previous);
    previous = cr;
  }
}

TEST(AsymptoticCr, LimitOfFiniteFormula) {
  // Fixing a = n/f and growing n, Theorem 1 tends to the asymptotic form.
  const Real a = 1.5L;
  const Real limit = asymptotic_cr(a);
  const Real at_3000 = algorithm_cr(3000, 2000);
  const Real at_30 = algorithm_cr(30, 20);
  EXPECT_LT(std::fabs(at_3000 - limit), std::fabs(at_30 - limit));
  EXPECT_NEAR(static_cast<double>(at_3000), static_cast<double>(limit),
              0.01);
}

TEST(AsymptoticCr, DomainGuard) {
  EXPECT_THROW((void)asymptotic_cr(1.0L), PreconditionError);
  EXPECT_THROW((void)asymptotic_cr(2.0L), PreconditionError);
}

}  // namespace
}  // namespace linesearch

// Tests for core/proportional.hpp — Lemma 2, Definition 4 and Lemma 4,
// verified both against closed forms and against the materialized
// trajectories (two independent code paths).
#include "core/proportional.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/zigzag.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(ProportionalityRatio, Lemma2ClosedForm) {
  // r = ((beta+1)/(beta-1))^(2/n).
  EXPECT_NEAR(static_cast<double>(proportionality_ratio(1, 3)), 4.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(proportionality_ratio(2, 3)), 2.0, 1e-12);
  // n = 2f+1 with optimal beta has kappa = n+1, so r = (n+1)^(2/n):
  // for n = 3 (f=1): beta = 5/3, r = 4^(2/3).
  EXPECT_NEAR(static_cast<double>(proportionality_ratio(3, 5.0L / 3)),
              std::pow(4.0, 2.0 / 3.0), 1e-12);
}

TEST(ProportionalityRatio, GuardsArguments) {
  EXPECT_THROW((void)proportionality_ratio(0, 3), PreconditionError);
  EXPECT_THROW((void)proportionality_ratio(3, 1), PreconditionError);
}

TEST(Schedule, TurningPointsAreGeometric) {
  const ProportionalSchedule s(3, 2, 1);
  const Real r = s.proportionality_ratio();
  for (int j = -3; j <= 5; ++j) {
    EXPECT_NEAR(static_cast<double>(s.turning_point(j + 1) / s.turning_point(j)),
                static_cast<double>(r), 1e-12);
  }
  EXPECT_EQ(s.turning_point(0), 1.0L);
}

TEST(Schedule, TurningTimesOnConeBoundary) {
  const ProportionalSchedule s(4, 1.5L, 1);
  for (int j = 0; j < 8; ++j) {
    EXPECT_NEAR(static_cast<double>(s.turning_time(j)),
                static_cast<double>(1.5L * s.turning_point(j)), 1e-12);
  }
}

TEST(Schedule, RobotOwnershipCyclesModN) {
  const ProportionalSchedule s(4, 2, 1);
  EXPECT_EQ(s.robot_of(0), 0u);
  EXPECT_EQ(s.robot_of(3), 3u);
  EXPECT_EQ(s.robot_of(4), 0u);
  EXPECT_EQ(s.robot_of(-1), 3u);
  EXPECT_EQ(s.robot_of(-4), 0u);
}

TEST(Schedule, ExpansionFactorIsRToTheHalfN) {
  for (const int n : {2, 3, 5, 8}) {
    const ProportionalSchedule s(n, 1.8L, 1);
    EXPECT_NEAR(static_cast<double>(
                    std::pow(s.proportionality_ratio(),
                             static_cast<Real>(n) / 2)),
                static_cast<double>(s.expansion_factor()), 1e-10);
  }
}

TEST(Schedule, RejectsNonPositiveTau0) {
  EXPECT_THROW(ProportionalSchedule(3, 2, 0), PreconditionError);
  EXPECT_THROW(ProportionalSchedule(3, 2, -1), PreconditionError);
}

TEST(InitialTurn, RobotZeroGoesStraightToTau0) {
  const ProportionalSchedule s(5, 2, 1);
  EXPECT_EQ(s.initial_turn(0), 1.0L);
}

TEST(InitialTurn, EarlyRobotsStartLeftLateRobotsStartRight) {
  // n = 5: robots 1, 2 (i < n/2) extend back once -> negative start;
  // robots 3, 4 (i > n/2) extend back twice -> positive start.
  const ProportionalSchedule s(5, 2, 1);
  EXPECT_LT(s.initial_turn(1), 0.0L);
  EXPECT_LT(s.initial_turn(2), 0.0L);
  EXPECT_GT(s.initial_turn(3), 0.0L);
  EXPECT_GT(s.initial_turn(4), 0.0L);
}

TEST(InitialTurn, MagnitudesStrictlyBelowTau0) {
  for (const int n : {2, 3, 4, 5, 7, 11}) {
    const ProportionalSchedule s(n, 1.7L, 1);
    for (int i = 1; i < n; ++i) {
      EXPECT_LT(std::fabs(s.initial_turn(i)), 1.0L)
          << "n=" << n << " i=" << i;
      EXPECT_GT(std::fabs(s.initial_turn(i)), 0.0L);
    }
  }
}

TEST(InitialTurn, BoundaryCaseHalfN) {
  // i == n/2 (even n): the one-step-back magnitude is exactly tau0, which
  // is NOT < tau0, so the extension goes one more step and lands positive.
  const ProportionalSchedule s(4, 2, 1);
  const Real kappa = s.expansion_factor();
  EXPECT_NEAR(static_cast<double>(s.initial_turn(2)),
              static_cast<double>(1 / kappa), 1e-12);
  EXPECT_GT(s.initial_turn(2), 0.0L);
}

TEST(InitialTurn, ExactValuesForN5Beta2) {
  // n=5, beta=2: kappa=3, r=3^(2/5).  tau_i = r^i.
  // i=1,2: -r^(i - 2.5); i=3,4: +r^(i-5).
  const ProportionalSchedule s(5, 2, 1);
  const Real r = s.proportionality_ratio();
  EXPECT_NEAR(static_cast<double>(s.initial_turn(1)),
              static_cast<double>(-std::pow(r, -1.5L)), 1e-12);
  EXPECT_NEAR(static_cast<double>(s.initial_turn(4)),
              static_cast<double>(std::pow(r, -1.0L)), 1e-12);
}

TEST(InitialTurn, OutOfRangeThrows) {
  const ProportionalSchedule s(3, 2, 1);
  EXPECT_THROW((void)s.initial_turn(-1), PreconditionError);
  EXPECT_THROW((void)s.initial_turn(3), PreconditionError);
}

TEST(Lemma4, ClosedFormMatchesPaperExpression) {
  // tau0 ((beta+1)^((2f+2)/n) (beta-1)^(1-(2f+2)/n) + 1).
  for (const auto& [n, f, beta] :
       std::vector<std::tuple<int, int, Real>>{
           {3, 1, 5.0L / 3}, {5, 2, 1.4L}, {5, 3, 2.2L}, {2, 1, 3.0L}}) {
    const ProportionalSchedule s(n, beta, 1);
    const Real e = static_cast<Real>(2 * f + 2) / n;
    const Real expected =
        std::pow(beta + 1, e) * std::pow(beta - 1, 1 - e) + 1;
    EXPECT_NEAR(static_cast<double>(s.lemma4_detection_time(f)),
                static_cast<double>(expected), 1e-10)
        << "n=" << n << " f=" << f;
  }
}

TEST(Lemma4, ScalesLinearlyWithTau0) {
  const ProportionalSchedule unit(3, 2, 1);
  const ProportionalSchedule scaled(3, 2, 2.5L);
  EXPECT_NEAR(static_cast<double>(scaled.lemma4_detection_time(1)),
              static_cast<double>(2.5L * unit.lemma4_detection_time(1)),
              1e-10);
}

// ---- Lemma 2 verified against the MATERIALIZED fleet ------------------

TEST(ScheduleSimulation, Lemma2TimeRecurrence) {
  // t_{i+1} = t_i + tau_i * beta * (r-1), verified on actual trajectories:
  // the turning waypoints of the built fleet must appear at the predicted
  // times.
  const int n = 4;
  const Real beta = 1.8L;
  const ProportionalSchedule s(n, beta, 1);
  const Fleet fleet = s.build_fleet(50);
  const Real r = s.proportionality_ratio();
  for (int j = 0; j < 8; ++j) {
    const Real tau = s.turning_point(j);
    const RobotId robot = s.robot_of(j);
    // Find this turning point among the robot's turning waypoints.
    bool found = false;
    for (const Waypoint& w : fleet.robot(robot).turning_waypoints()) {
      if (approx_equal(w.position, tau, 1e-9L)) {
        EXPECT_NEAR(static_cast<double>(w.time),
                    static_cast<double>(beta * tau), 1e-9);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "turning point " << j << " missing";
    (void)r;
  }
}

TEST(ScheduleSimulation, Lemma4MatchesSimulatedDetection) {
  // The exact simulator's (f+1)-st distinct visit just past tau0 must
  // approach Lemma 4's closed form.
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {2, 1}, {3, 1}, {3, 2}, {5, 2}, {5, 3}, {4, 2}}) {
    const ProportionalSchedule s(n, 1 + static_cast<Real>(n) / 4, 1);
    const Fleet fleet = s.build_fleet(200);
    const Real probe = 1 + 1e-9L;  // right-limit past tau0 = 1
    const Real simulated = fleet.detection_time(probe, f);
    const Real closed_form = s.lemma4_detection_time(f);
    EXPECT_NEAR(static_cast<double>(simulated / closed_form), 1.0, 1e-6)
        << "n=" << n << " f=" << f;
  }
}

TEST(CheckSchedule, BuiltFleetPassesAllInvariants) {
  for (const auto& [n, beta] : std::vector<std::pair<int, Real>>{
           {2, 3.0L}, {3, 5.0L / 3}, {5, 2.0L}, {7, 1.3L}}) {
    const ProportionalSchedule s(n, beta, 1);
    const Fleet fleet = s.build_fleet(100);
    const ScheduleCheck check = check_schedule(fleet, n, beta, 1);
    EXPECT_TRUE(check.within_cone) << "n=" << n;
    EXPECT_TRUE(check.unit_speed_legs) << "n=" << n;
    EXPECT_TRUE(check.proportional)
        << "n=" << n << " err=" << static_cast<double>(check.max_ratio_error);
    EXPECT_TRUE(check.robots_interleaved) << "n=" << n;
    EXPECT_TRUE(check.all_ok());
  }
}

TEST(CheckSchedule, DetectsBrokenProportionality) {
  // A fleet of two UNALIGNED doubling zig-zags is not proportional for
  // r(2, 3) = 2: the turn ratio alternates around 2.
  std::vector<Trajectory> robots;
  robots.push_back(make_origin_zigzag({.beta = 3, .first_turn = 1,
                                       .min_coverage = 60}));
  robots.push_back(make_origin_zigzag({.beta = 3, .first_turn = 1.2L,
                                       .min_coverage = 60}));
  const Fleet fleet{std::move(robots)};
  const ScheduleCheck check = check_schedule(fleet, 2, 3, 1);
  EXPECT_TRUE(check.within_cone);
  EXPECT_FALSE(check.proportional);
  EXPECT_FALSE(check.all_ok());
}

TEST(BuildFleet, AllRobotsCoverExtentBothSides) {
  const ProportionalSchedule s(5, 2, 1);
  const Fleet fleet = s.build_fleet(30);
  EXPECT_EQ(fleet.size(), 5u);
  EXPECT_TRUE(fleet.covers(1, 30, 5));
}

TEST(BuildFleet, PrefixLegIsSubUnitSpeed) {
  const ProportionalSchedule s(4, 2, 1);
  const Fleet fleet = s.build_fleet(20);
  for (RobotId id = 0; id < fleet.size(); ++id) {
    const auto& wps = fleet.robot(id).waypoints();
    ASSERT_GE(wps.size(), 2u);
    const Real prefix_speed =
        std::fabs(wps[1].position - wps[0].position) /
        (wps[1].time - wps[0].time);
    EXPECT_NEAR(static_cast<double>(prefix_speed), 1.0 / 2.0, 1e-12)
        << "prefix leg must run at speed 1/beta";
  }
}

TEST(BuildFleet, RejectsExtentBelowTau0) {
  const ProportionalSchedule s(3, 2, 1);
  EXPECT_THROW((void)s.build_fleet(0.5L), PreconditionError);
}

}  // namespace
}  // namespace linesearch

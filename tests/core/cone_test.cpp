// Tests for core/cone.hpp.
#include "core/cone.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(Cone, ExpansionFactorMatchesLemma1) {
  EXPECT_NEAR(static_cast<double>(Cone(3).expansion_factor()), 2.0, 1e-15);
  EXPECT_NEAR(static_cast<double>(Cone(2).expansion_factor()), 3.0, 1e-15);
  // Table 1's (3,1): beta = 5/3 -> kappa = 4.
  EXPECT_NEAR(static_cast<double>(Cone(5.0L / 3).expansion_factor()), 4.0,
              1e-12);
}

TEST(Cone, RejectsBetaAtOrBelowOne) {
  EXPECT_THROW(Cone(1), PreconditionError);
  EXPECT_THROW(Cone(0.99L), PreconditionError);
}

TEST(Cone, BoundaryTimeSymmetricInX) {
  const Cone cone(2.5L);
  EXPECT_EQ(cone.boundary_time(4), 10.0L);
  EXPECT_EQ(cone.boundary_time(-4), 10.0L);
  EXPECT_EQ(cone.boundary_time(0), 0.0L);
}

TEST(Cone, ContainsInteriorAndBoundary) {
  const Cone cone(3);
  EXPECT_TRUE(cone.contains(1, 3));     // on boundary
  EXPECT_TRUE(cone.contains(1, 5));     // inside
  EXPECT_TRUE(cone.contains(-2, 6.5L)); // inside on left
  EXPECT_FALSE(cone.contains(1, 2));    // below boundary
  EXPECT_FALSE(cone.contains(-2, 5));   // below boundary on left
}

TEST(Cone, ContainsOriginAxis) {
  const Cone cone(5);
  EXPECT_TRUE(cone.contains(0, 0));
  EXPECT_TRUE(cone.contains(0, 100));
}

TEST(Cone, FromExpansionFactorRoundTrips) {
  for (const Real kappa : {1.5L, 2.0L, 3.0L, 6.0L, 42.0L}) {
    const Cone cone = Cone::from_expansion_factor(kappa);
    EXPECT_NEAR(static_cast<double>(cone.expansion_factor()),
                static_cast<double>(kappa), 1e-12);
  }
}

TEST(Cone, DescribeMentionsBothParameters) {
  const std::string d = Cone(3).describe();
  EXPECT_NE(d.find("beta=3"), std::string::npos);
  EXPECT_NE(d.find("kappa=2"), std::string::npos);
}

TEST(Cone, EqualityIsValueBased) {
  EXPECT_EQ(Cone(3), Cone(3));
  EXPECT_NE(Cone(3), Cone(2));
}

}  // namespace
}  // namespace linesearch

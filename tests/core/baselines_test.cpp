// Tests for core/baselines.hpp.
#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/series.hpp"
#include "core/competitive.hpp"
#include "eval/cr_eval.hpp"
#include "sim/zigzag.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(TwoGroupSplitTest, RequiresEnoughRobots) {
  EXPECT_NO_THROW(TwoGroupSplit(4, 1));
  EXPECT_NO_THROW(TwoGroupSplit(2, 0));
  EXPECT_THROW(TwoGroupSplit(3, 1), PreconditionError);
  EXPECT_THROW(TwoGroupSplit(4, -1), PreconditionError);
}

TEST(TwoGroupSplitTest, DetectionAtDistanceExactly) {
  // CR = 1: worst-case detection time equals |x| on both sides.
  const TwoGroupSplit split(4, 1);
  const Fleet fleet = split.build_fleet(50);
  for (const Real x : {1.0L, -3.5L, 20.0L, -49.0L}) {
    EXPECT_NEAR(static_cast<double>(fleet.detection_time(x, 1)),
                static_cast<double>(std::fabs(x)), 1e-12)
        << static_cast<double>(x);
  }
}

TEST(TwoGroupSplitTest, EachSideHasFPlus1Robots) {
  const TwoGroupSplit split(6, 2);
  const Fleet fleet = split.build_fleet(10);
  int right = 0, left = 0;
  for (RobotId id = 0; id < fleet.size(); ++id) {
    (fleet.robot(id).end_position() > 0 ? right : left) += 1;
  }
  EXPECT_GE(right, 3);
  EXPECT_GE(left, 3);
}

TEST(TwoGroupSplitTest, ExtraRobotsStillBalanced) {
  const TwoGroupSplit split(9, 2);  // 2f+2 = 6, three extras
  const Fleet fleet = split.build_fleet(10);
  int right = 0, left = 0;
  for (RobotId id = 0; id < fleet.size(); ++id) {
    (fleet.robot(id).end_position() > 0 ? right : left) += 1;
  }
  EXPECT_GE(right, 3);
  EXPECT_GE(left, 3);
  EXPECT_EQ(right + left, 9);
}

TEST(GroupDoublingTest, AllRobotsShareOneTrajectory) {
  const GroupDoubling pack(3, 2);
  const Fleet fleet = pack.build_fleet(30);
  for (const Real t : {1.0L, 4.0L, 9.0L}) {
    const Real x0 = fleet.robot(0).position_at(t);
    EXPECT_EQ(fleet.robot(1).position_at(t), x0);
    EXPECT_EQ(fleet.robot(2).position_at(t), x0);
  }
}

TEST(GroupDoublingTest, FaultsDoNotDelayDetection) {
  // Identical trajectories: the (f+1)-st distinct visit time equals the
  // first visit time, for every fault budget below n.
  const GroupDoubling pack(4, 3);
  const Fleet fleet = pack.build_fleet(30);
  for (const Real x : {1.5L, -2.0L, 10.0L}) {
    EXPECT_EQ(fleet.detection_time(x, 0), fleet.detection_time(x, 3));
  }
}

TEST(GroupDoublingTest, TheoreticalCrIsNine) {
  EXPECT_EQ(*GroupDoubling(5, 2).theoretical_cr(), 9.0L);
}

TEST(GroupDoublingTest, WorstCaseRatioApproachesNine) {
  // Just past a positive turning point 4^k the detection of x = 4^k + eps
  // happens on the return from -2*4^k: ratio -> 9 as eps -> 0.
  const GroupDoubling pack(2, 1);
  const Fleet fleet = pack.build_fleet(200);
  const Real x = 4 * (1 + 1e-9L);
  const Real ratio = fleet.detection_time(x, 1) / x;
  EXPECT_NEAR(static_cast<double>(ratio), 9.0, 1e-6);
}

TEST(GroupDoublingTest, GuardsArguments) {
  EXPECT_THROW(GroupDoubling(3, 3), PreconditionError);
  EXPECT_THROW(GroupDoubling(0, 0), PreconditionError);
}

TEST(UniformOffsetTest, SameConeAsAlgorithm) {
  const UniformOffsetZigzag uniform(5, 3);
  EXPECT_NEAR(static_cast<double>(uniform.beta()),
              static_cast<double>(optimal_beta(5, 3)), 1e-15);
}

TEST(UniformOffsetTest, FleetValidAndCovering) {
  const UniformOffsetZigzag uniform(3, 2);
  const Fleet fleet = uniform.build_fleet(40);
  EXPECT_EQ(fleet.size(), 3u);
  for (RobotId id = 0; id < fleet.size(); ++id) {
    EXPECT_TRUE(within_cone(fleet.robot(id), uniform.beta()));
  }
  EXPECT_TRUE(fleet.covers(1, 40, 3));
}

TEST(UniformOffsetTest, FirstTurnMagnitudesAreArithmetic) {
  const UniformOffsetZigzag uniform(4, 3);
  const Fleet fleet = uniform.build_fleet(40);
  std::vector<Real> magnitudes;
  std::vector<int> sides;
  for (RobotId id = 0; id < fleet.size(); ++id) {
    const Real p = fleet.robot(id).turning_waypoints().front().position;
    magnitudes.push_back(std::fabs(p));
    sides.push_back(sign_of(p));
  }
  // Magnitude differences are equal (arithmetic), unlike the
  // proportional schedule's geometric spacing; sides alternate.
  const Real d0 = magnitudes[1] - magnitudes[0];
  EXPECT_GT(d0, 0.0L);
  for (std::size_t i = 1; i + 1 < magnitudes.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(magnitudes[i + 1] - magnitudes[i]),
                static_cast<double>(d0), 1e-10);
  }
  for (std::size_t i = 0; i < sides.size(); ++i) {
    EXPECT_EQ(sides[i], (i % 2 == 0) ? 1 : -1);
  }
}

TEST(UniformOffsetTest, OutsideRegimeThrows) {
  EXPECT_THROW(UniformOffsetZigzag(4, 1), PreconditionError);
}

TEST(ClassicCowPathTest, TurningPointsAreTheDoublingSequence) {
  const ClassicCowPath classic(1, 0);
  const Fleet fleet = classic.build_fleet(30);
  const std::vector<Waypoint> turns = fleet.robot(0).turning_waypoints();
  ASSERT_GE(turns.size(), 4u);
  EXPECT_EQ(turns[0].position, 1.0L);
  EXPECT_EQ(turns[1].position, -2.0L);
  EXPECT_EQ(turns[2].position, 4.0L);
  EXPECT_EQ(turns[3].position, -8.0L);
}

TEST(ClassicCowPathTest, FullSpeedFromTheStart) {
  // Unlike the cone version (speed 1/beta prefix), the classic robot is
  // at +1 at t = 1 and turns at x_k at time 3|x_k| - 2.
  const ClassicCowPath classic(1, 0);
  const Fleet fleet = classic.build_fleet(30);
  const Trajectory& t = fleet.robot(0);
  EXPECT_EQ(t.position_at(1), 1.0L);
  for (const Waypoint& w : t.turning_waypoints()) {
    EXPECT_NEAR(static_cast<double>(w.time),
                static_cast<double>(3 * std::fabs(w.position) - 2), 1e-12);
  }
}

TEST(ClassicCowPathTest, RatioJustPastTurnIsNineMinusCorrection) {
  // Just past a turning point of magnitude m (positive turns 4^j,
  // negative turns 2*4^j), the ratio is 9 - 2/m: the cow-path bound 9
  // approached from below — the affine (not conic) start buys a
  // vanishing 2/m advantage.
  const ClassicCowPath classic(1, 0);
  const Fleet fleet = classic.build_fleet(3000);
  for (const Real m : {4.0L, 16.0L, 64.0L}) {  // positive turns
    const Real x = m * (1 + 1e-9L);
    EXPECT_NEAR(static_cast<double>(fleet.detection_time(x, 0) / x),
                static_cast<double>(9 - 2 / m), 1e-6)
        << static_cast<double>(m);
  }
  for (const Real m : {2.0L, 8.0L, 32.0L}) {  // negative turns
    const Real x = -m * (1 + 1e-9L);
    EXPECT_NEAR(static_cast<double>(fleet.detection_time(x, 0) / m),
                static_cast<double>(9 - 2 / m), 1e-6)
        << static_cast<double>(m);
  }
}

TEST(ClassicCowPathTest, PackIsFaultObliviousLikeGroupDoubling) {
  const ClassicCowPath classic(4, 3);
  const Fleet fleet = classic.build_fleet(100);
  for (const Real x : {1.5L, -3.0L, 20.0L}) {
    EXPECT_EQ(fleet.detection_time(x, 0), fleet.detection_time(x, 3));
  }
}

TEST(ClassicCowPathTest, MirroredSplitsTheDirections) {
  const ClassicCowPath classic(4, 1, /*mirrored=*/true);
  const Fleet fleet = classic.build_fleet(50);
  int right_first = 0, left_first = 0;
  for (RobotId id = 0; id < fleet.size(); ++id) {
    const Real first = fleet.robot(id).turning_waypoints().front().position;
    (first > 0 ? right_first : left_first) += 1;
  }
  EXPECT_EQ(right_first, 2);
  EXPECT_EQ(left_first, 2);
  EXPECT_FALSE(classic.theoretical_cr().has_value());
}

TEST(ClassicCowPathTest, MirroredPairBeatsThePackForOneFault) {
  // With f = 1 and mirrored pairs, the adversary must silence one group
  // entirely... it cannot (each direction has 2 robots), so the worst
  // ratio improves over the single-pack 9 on the first-visited side.
  const ClassicCowPath pack(4, 1, false);
  const ClassicCowPath mirrored(4, 1, true);
  const Real x = 4 * (1 + 1e-9L);
  const Fleet pack_fleet = pack.build_fleet(500);
  const Fleet mirrored_fleet = mirrored.build_fleet(500);
  EXPECT_LT(mirrored_fleet.detection_time(x, 1),
            pack_fleet.detection_time(x, 1));
}

TEST(ClassicCowPathTest, GuardsArguments) {
  EXPECT_THROW(ClassicCowPath(0, 0), PreconditionError);
  EXPECT_THROW(ClassicCowPath(3, 3), PreconditionError);
  EXPECT_THROW(ClassicCowPath(1, 0, /*mirrored=*/true), PreconditionError);
}

TEST(StaggeredDoublingTest, DelaysShiftVisitTimesLinearly) {
  const StaggeredDoubling staggered(3, 1, 2);
  const Fleet fleet = staggered.build_fleet(60);
  // Robot i's first visit of any point is the classic time + 2i.
  for (const Real x : {1.0L, -2.0L, 5.0L}) {
    const std::vector<Real> times = fleet.first_visit_times(x);
    EXPECT_NEAR(static_cast<double>(times[1] - times[0]), 2.0, 1e-12);
    EXPECT_NEAR(static_cast<double>(times[2] - times[1]), 2.0, 1e-12);
  }
}

TEST(StaggeredDoublingTest, DetectionDelayedByExactlyFDeltas) {
  const Real delta = 3;
  const StaggeredDoubling staggered(4, 2, delta);
  const Fleet fleet = staggered.build_fleet(60);
  for (const Real x : {1.5L, -4.0L, 10.0L}) {
    EXPECT_NEAR(static_cast<double>(fleet.detection_time(x, 2) -
                                    fleet.detection_time(x, 0)),
                static_cast<double>(2 * delta), 1e-12);
  }
}

TEST(StaggeredDoublingTest, NeverBeatsGroupDoublingAndLosesToProportional) {
  // Linear stagger adds f*delta to every detection, so the measured CR
  // is at least the pack's ~9 and far above A(3,1)'s 5.233; a large
  // delta is punished in full near the minimum distance.
  const StaggeredDoubling mild(3, 1, 2);
  const Fleet mild_fleet = mild.build_fleet(800);
  const Real mild_cr = measure_cr(mild_fleet, 1, {.window_hi = 16}).cr;
  EXPECT_GT(mild_cr, 8.9L);
  EXPECT_GT(mild_cr, algorithm_cr(3, 1) + 3);

  const StaggeredDoubling harsh(3, 1, 10);
  const Fleet harsh_fleet = harsh.build_fleet(800);
  const Real harsh_cr = measure_cr(harsh_fleet, 1, {.window_hi = 16}).cr;
  // Detection at x just past 1 costs ~ 7 + 10 = 17.
  EXPECT_GT(harsh_cr, 16.0L);
}

TEST(StaggeredDoublingTest, GuardsArguments) {
  EXPECT_THROW(StaggeredDoubling(3, 3), PreconditionError);
  EXPECT_THROW(StaggeredDoubling(3, 1, 0), PreconditionError);
}

TEST(Names, AreDescriptive) {
  EXPECT_EQ(TwoGroupSplit(4, 1).name(), "two-group split(4,1)");
  EXPECT_EQ(GroupDoubling(3, 1).name(), "group doubling(3,1)");
  EXPECT_EQ(UniformOffsetZigzag(3, 1).name(), "uniform-offset(3,1)");
  EXPECT_EQ(ClassicCowPath(2, 1).name(), "classic cow-path(2,1)");
  EXPECT_EQ(ClassicCowPath(2, 1, true).name(), "mirrored classic cow-path(2,1)");
}

}  // namespace
}  // namespace linesearch

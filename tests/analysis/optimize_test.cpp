// Tests for analysis/optimize.hpp.
#include "analysis/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(GoldenSection, ParabolaMinimum) {
  const MinimizeResult r =
      golden_section([](Real x) { return (x - 3) * (x - 3) + 2; }, 0, 10);
  EXPECT_NEAR(static_cast<double>(r.x), 3.0, 1e-8);
  EXPECT_NEAR(static_cast<double>(r.fx), 2.0, 1e-12);
}

TEST(GoldenSection, CoshMinimumAtZero) {
  const MinimizeResult r =
      golden_section([](Real x) { return std::cosh(x); }, -2, 5);
  EXPECT_NEAR(static_cast<double>(r.x), 0.0, 1e-8);
}

TEST(GoldenSection, RequiresOrderedInterval) {
  EXPECT_THROW((void)golden_section([](Real x) { return x; }, 1, 0),
               PreconditionError);
}

TEST(GoldenSectionMax, FindsMaximumValue) {
  const MinimizeResult r = golden_section_max(
      [](Real x) { return -(x - 2) * (x - 2) + 7; }, 0, 5);
  EXPECT_NEAR(static_cast<double>(r.x), 2.0, 1e-8);
  EXPECT_NEAR(static_cast<double>(r.fx), 7.0, 1e-12);
}

TEST(GridThenGolden, SurvivesMildNonUnimodality) {
  // Two local minima; global at x ~ 4.5 (value -1), local at 0.5.
  const auto f = [](Real x) {
    return std::min((x - 0.5L) * (x - 0.5L),
                    (x - 4.5L) * (x - 4.5L) - 1);
  };
  const MinimizeResult r = grid_then_golden(f, 0, 6, 50);
  EXPECT_NEAR(static_cast<double>(r.x), 4.5, 1e-6);
  EXPECT_NEAR(static_cast<double>(r.fx), -1.0, 1e-10);
}

TEST(GridThenGolden, RequiresEnoughGridPoints) {
  EXPECT_THROW((void)grid_then_golden([](Real x) { return x; }, 0, 1, 2),
               PreconditionError);
}

TEST(GoldenSection, ToleranceControlsWidth) {
  MinimizeOptions loose;
  loose.tolerance = 1e-2L;
  const MinimizeResult coarse = golden_section(
      [](Real x) { return (x - 1) * (x - 1); }, 0, 10, loose);
  const MinimizeResult fine =
      golden_section([](Real x) { return (x - 1) * (x - 1); }, 0, 10);
  EXPECT_LE(std::fabs(fine.x - 1), std::fabs(coarse.x - 1) + 1e-15L);
  EXPECT_LT(coarse.iterations, fine.iterations);
}

// The paper's own optimization: F(beta) = (beta+1)^e (beta-1)^(1-e) + 1
// with e = (2f+2)/n is minimized at beta* = (4f+4)/n - 1.  Golden section
// must reproduce the closed form (this is the heart of Theorem 1).
TEST(GoldenSection, ReproducesPaperOptimalBeta) {
  const int n = 5, f = 3;
  const Real e = static_cast<Real>(2 * f + 2) / n;
  const auto F = [e](const Real beta) {
    return std::pow(beta + 1, e) * std::pow(beta - 1, 1 - e) + 1;
  };
  const MinimizeResult r = golden_section(F, 1.0001L, 10);
  const Real beta_star = static_cast<Real>(4 * f + 4) / n - 1;
  EXPECT_NEAR(static_cast<double>(r.x), static_cast<double>(beta_star),
              1e-7);
}

}  // namespace
}  // namespace linesearch

// Tests for analysis/series.hpp.
#include "analysis/series.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/real.hpp"

namespace linesearch {
namespace {

TEST(GeometricSum, ClosedFormMatchesManualSum) {
  // 3 + 6 + 12 + 24 = 45
  EXPECT_NEAR(static_cast<double>(geometric_sum(3, 2, 4)), 45.0, 1e-12);
}

TEST(GeometricSum, RatioOneIsLinear) {
  EXPECT_EQ(geometric_sum(5, 1, 7), 35.0L);
}

TEST(GeometricSum, ZeroTermsIsZero) {
  EXPECT_EQ(geometric_sum(3, 2, 0), 0.0L);
}

TEST(GeometricSum, FractionalRatio) {
  // 1 + 1/2 + 1/4 = 1.75
  EXPECT_NEAR(static_cast<double>(geometric_sum(1, 0.5L, 3)), 1.75, 1e-15);
}

TEST(GeometricSum, NegativeCountThrows) {
  EXPECT_THROW((void)geometric_sum(1, 2, -1), PreconditionError);
}

TEST(GeometricTerm, PositiveAndNegativeExponents) {
  EXPECT_NEAR(static_cast<double>(geometric_term(2, 3, 4)), 162.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(geometric_term(8, 2, -3)), 1.0, 1e-15);
}

TEST(GeometricSequence, FirstTerms) {
  const std::vector<Real> seq = geometric_sequence(1, 2, 5);
  ASSERT_EQ(seq.size(), 5u);
  EXPECT_EQ(seq[0], 1.0L);
  EXPECT_EQ(seq[4], 16.0L);
}

TEST(TermsUntilAtLeast, ExactBoundary) {
  // 1 * 2^k >= 8 first at k = 3.
  EXPECT_EQ(terms_until_at_least(1, 2, 8), 3);
}

TEST(TermsUntilAtLeast, AlreadyBigEnough) {
  EXPECT_EQ(terms_until_at_least(10, 2, 5), 0);
}

TEST(TermsUntilAtLeast, NonIntegerRatio) {
  // 1 * 1.5^k >= 10: 1.5^5 = 7.59, 1.5^6 = 11.39 -> k = 6.
  EXPECT_EQ(terms_until_at_least(1, 1.5L, 10), 6);
}

TEST(TermsUntilAtLeast, RejectsBadArguments) {
  EXPECT_THROW((void)terms_until_at_least(-1, 2, 5), PreconditionError);
  EXPECT_THROW((void)terms_until_at_least(1, 1, 5), PreconditionError);
}

TEST(Ipow, MatchesRepeatedMultiplication) {
  EXPECT_EQ(ipow(2, 10), 1024.0L);
  EXPECT_EQ(ipow(3, 0), 1.0L);
  EXPECT_EQ(ipow(-2, 3), -8.0L);
}

TEST(Ipow, NegativeExponent) {
  EXPECT_NEAR(static_cast<double>(ipow(2, -3)), 0.125, 1e-18);
}

TEST(Ipow, ZeroBaseNegativeExponentThrows) {
  EXPECT_THROW((void)ipow(0, -1), PreconditionError);
}

TEST(Ipow, LargeExponentStaysExactForPowersOfTwo) {
  EXPECT_EQ(ipow(2, 62), 4611686018427387904.0L);
}

}  // namespace
}  // namespace linesearch

// Tests for analysis/convergence.hpp — Aitken and Richardson
// acceleration, including against the paper's own asymptotic sequences.
#include "analysis/convergence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/competitive.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(Aitken, AcceleratesGeometricConvergence) {
  // s_k = 5 + 0.8^k converges linearly; Aitken on three consecutive
  // terms of an exactly geometric tail recovers the limit exactly.
  std::vector<Real> sequence;
  for (int k = 0; k < 8; ++k) {
    sequence.push_back(5 + std::pow(0.8L, static_cast<Real>(k)));
  }
  EXPECT_NEAR(static_cast<double>(aitken_limit(sequence, 1)), 5.0, 1e-15);
}

TEST(Aitken, ImprovesHarmonicConvergence) {
  // s_n = 2 + 1/n: raw tail error at n=10 is 0.1; iterated Aitken does
  // far better.
  std::vector<Real> sequence;
  for (int k = 1; k <= 10; ++k) {
    sequence.push_back(2 + Real{1} / static_cast<Real>(k));
  }
  const Real raw_error = std::fabs(sequence.back() - 2);
  const Real accelerated_error = std::fabs(aitken_limit(sequence) - 2);
  // 1/n converges logarithmically, where each Aitken pass only halves
  // the error constant — still a solid improvement over the raw tail.
  EXPECT_LT(accelerated_error, raw_error / 5);
}

TEST(Aitken, ConstantTailPassesThrough) {
  EXPECT_EQ(aitken_limit({3.0L, 3.0L, 3.0L, 3.0L}, 1), 3.0L);
}

TEST(Aitken, Guards) {
  EXPECT_THROW((void)aitken_limit({1.0L, 2.0L}), PreconditionError);
  EXPECT_THROW((void)aitken_limit({1.0L, 2.0L, 3.0L}, 0),
               PreconditionError);
}

TEST(Richardson, EliminatesKnownOrderExactly) {
  // s(n) = 7 + 3/n: one step on (n, 2n) recovers 7 exactly.
  const Real s_n = 7 + 3.0L / 8;
  const Real s_2n = 7 + 3.0L / 16;
  EXPECT_NEAR(static_cast<double>(richardson_step(s_n, s_2n)), 7.0, 1e-18);
}

TEST(Richardson, TableauHandlesTwoTerms) {
  // s(n) = 1 + 1/n + 5/n^2 on a doubling ladder.
  std::vector<Real> ladder;
  for (const Real n : {4.0L, 8.0L, 16.0L, 32.0L}) {
    ladder.push_back(1 + 1 / n + 5 / (n * n));
  }
  EXPECT_NEAR(static_cast<double>(richardson_limit(ladder)), 1.0, 1e-12);
}

TEST(Richardson, Guards) {
  EXPECT_THROW((void)richardson_step(1, 2, 0), PreconditionError);
  EXPECT_THROW((void)richardson_limit({1.0L}), PreconditionError);
}

TEST(Convergence, PinsFigure5RightLimit) {
  // algorithm_cr(a*k, k) -> asymptotic_cr(a) with error O(1/k):
  // Richardson on a doubling ladder pins the limit far tighter than the
  // raw tail.
  const Real a = 1.5L;
  std::vector<Real> ladder;
  for (int f = 32; f <= 512; f *= 2) {  // n = 3f/2 exactly (f even)
    ladder.push_back(algorithm_cr(3 * f / 2, f));
  }
  const Real limit = asymptotic_cr(a);
  const Real raw_error = std::fabs(ladder.back() - limit);
  const Real accelerated_error =
      std::fabs(richardson_limit(ladder) - limit);
  EXPECT_LT(accelerated_error, raw_error / 1000);
  EXPECT_NEAR(static_cast<double>(richardson_limit(ladder)),
              static_cast<double>(limit), 1e-6);
}

TEST(Convergence, PinsTheSharperCoefficientTwo) {
  // The refined Corollary-1 coefficient (CR - 3 - 2/n) n / ln(n+1)
  // converges to 2 slowly; Aitken sharpens the estimate dramatically.
  std::vector<Real> sequence;
  for (int n = 65; n <= 16641; n = 2 * n - 1) {  // 65, 129, ..., 16385ish
    const Real nn = static_cast<Real>(n);
    sequence.push_back((cr_half_faulty(n) - 3 - 2 / nn) * nn /
                       std::log(nn + 1));
  }
  const Real raw_error = std::fabs(sequence.back() - 2);
  const Real accelerated_error = std::fabs(aitken_limit(sequence) - 2);
  EXPECT_LT(accelerated_error, raw_error / 10);
  EXPECT_NEAR(static_cast<double>(aitken_limit(sequence)), 2.0, 1e-4);
}

}  // namespace
}  // namespace linesearch

// Tests for analysis/stats.hpp — including the detection-order-statistic
// semantics used by Fleet.
#include "analysis/stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(Summarize, BasicAggregates) {
  const Summary s = summarize({1.0L, 2.0L, 3.0L, 4.0L});
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(static_cast<double>(s.mean), 2.5, 1e-15);
  EXPECT_EQ(s.min, 1.0L);
  EXPECT_EQ(s.max, 4.0L);
  // Sample stddev of 1..4 is sqrt(5/3).
  EXPECT_NEAR(static_cast<double>(s.stddev), 1.2909944487358056, 1e-12);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Summarize, SingleValueHasZeroStddev) {
  const Summary s = summarize({7.0L});
  EXPECT_EQ(s.stddev, 0.0L);
  EXPECT_EQ(s.mean, 7.0L);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<Real> v{5.0L, 1.0L, 3.0L, 2.0L, 4.0L};
  EXPECT_EQ(quantile(v, 0.5L), 3.0L);
  EXPECT_EQ(quantile(v, 0.0L), 1.0L);
  EXPECT_EQ(quantile(v, 1.0L), 5.0L);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  EXPECT_NEAR(static_cast<double>(quantile({1.0L, 2.0L}, 0.25L)), 1.25,
              1e-15);
}

TEST(Quantile, RejectsEmptyOrOutOfRange) {
  EXPECT_THROW((void)quantile({}, 0.5L), PreconditionError);
  EXPECT_THROW((void)quantile({1.0L}, 1.5L), PreconditionError);
}

TEST(KthSmallest, OrderStatistics) {
  const std::vector<Real> v{9.0L, 1.0L, 7.0L, 3.0L};
  EXPECT_EQ(kth_smallest(v, 0), 1.0L);
  EXPECT_EQ(kth_smallest(v, 1), 3.0L);
  EXPECT_EQ(kth_smallest(v, 3), 9.0L);
}

TEST(KthSmallest, DetectionSemanticsWithInfinity) {
  // Two robots reach the target (t=2, t=5), one never does.  With f=1
  // adversarial fault, detection is the 2nd smallest = 5; with f=2 the
  // "detection" never happens (infinity), exactly the Fleet semantics.
  const std::vector<Real> visits{5.0L, kInfinity, 2.0L};
  EXPECT_EQ(kth_smallest(visits, 1), 5.0L);
  EXPECT_EQ(kth_smallest(visits, 2), kInfinity);
}

TEST(KthSmallest, OutOfRangeThrows) {
  EXPECT_THROW((void)kth_smallest({1.0L}, 1), PreconditionError);
}

TEST(KthSmallest, DuplicatesHandled) {
  EXPECT_EQ(kth_smallest({2.0L, 2.0L, 1.0L}, 1), 2.0L);
}

}  // namespace
}  // namespace linesearch

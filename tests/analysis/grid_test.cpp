// Tests for analysis/grid.hpp.
#include "analysis/grid.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/real.hpp"

namespace linesearch {
namespace {

TEST(Linspace, EndpointsExactAndEvenlySpaced) {
  const std::vector<Real> g = linspace(0, 1, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_EQ(g.front(), 0.0L);
  EXPECT_EQ(g.back(), 1.0L);
  EXPECT_NEAR(static_cast<double>(g[2]), 0.5, 1e-15);
}

TEST(Linspace, SinglePointRequiresEqualEndpoints) {
  EXPECT_EQ(linspace(2, 2, 1), std::vector<Real>{2.0L});
  EXPECT_THROW((void)linspace(0, 1, 1), PreconditionError);
}

TEST(Linspace, SinglePointAcceptsToleranceEqualEndpoints) {
  // Regression: count==1 used exact lo == hi, rejecting endpoints that
  // agree up to the library-wide tolerance policy (util/real.hpp) — e.g.
  // a window bound recomputed through a solver.  approx_equal is the law.
  const Real lo = 2;
  const Real hi = 2 * (1 + tol::kRelative / 10);
  ASSERT_NE(lo, hi);
  ASSERT_TRUE(approx_equal(lo, hi));
  EXPECT_EQ(linspace(lo, hi, 1), std::vector<Real>{lo});
  // Beyond tolerance still throws.
  EXPECT_THROW((void)linspace(2, 2 * (1 + 1e-6L), 1), PreconditionError);
}

TEST(Linspace, RejectsReversedInterval) {
  EXPECT_THROW((void)linspace(1, 0, 3), PreconditionError);
}

TEST(Geomspace, RatioIsConstant) {
  const std::vector<Real> g = geomspace(1, 16, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_EQ(g.front(), 1.0L);
  EXPECT_EQ(g.back(), 16.0L);
  for (std::size_t i = 0; i + 1 < g.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(g[i + 1] / g[i]), 2.0, 1e-12);
  }
}

TEST(Geomspace, RejectsNonPositiveEndpoints) {
  EXPECT_THROW((void)geomspace(0, 1, 3), PreconditionError);
  EXPECT_THROW((void)geomspace(-1, 1, 3), PreconditionError);
}

TEST(IntRange, InclusiveBothEnds) {
  const std::vector<int> r = int_range(3, 6);
  EXPECT_EQ(r, (std::vector<int>{3, 4, 5, 6}));
  EXPECT_EQ(int_range(5, 5), std::vector<int>{5});
}

TEST(IntRange, RejectsReversed) {
  EXPECT_THROW((void)int_range(2, 1), PreconditionError);
}

TEST(OpenLinspace, ExcludesEndpoints) {
  const std::vector<Real> g = open_linspace(1, 2, 3);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_NEAR(static_cast<double>(g[0]), 1.25, 1e-15);
  EXPECT_NEAR(static_cast<double>(g[1]), 1.5, 1e-15);
  EXPECT_NEAR(static_cast<double>(g[2]), 1.75, 1e-15);
  EXPECT_GT(g.front(), 1.0L);
  EXPECT_LT(g.back(), 2.0L);
}

TEST(OpenLinspace, SinglePointIsMidpoint) {
  const std::vector<Real> g = open_linspace(0, 2, 1);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_NEAR(static_cast<double>(g[0]), 1.0, 1e-15);
}

}  // namespace
}  // namespace linesearch

// Tests for analysis/roots.hpp on functions with known roots, including
// the paper's Theorem-2 residual shape.
#include "analysis/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace linesearch {
namespace {

Real quadratic(const Real x) { return x * x - 2; }

TEST(Bisect, FindsSqrtTwo) {
  const RootResult r = bisect(quadratic, 0, 2);
  EXPECT_NEAR(static_cast<double>(r.x), std::sqrt(2.0), 1e-10);
}

TEST(Bisect, ThrowsWithoutSignChange) {
  EXPECT_THROW((void)bisect(quadratic, 2, 3), NumericError);
}

TEST(Bisect, RequiresOrderedBracket) {
  EXPECT_THROW((void)bisect(quadratic, 2, 0), PreconditionError);
}

TEST(Bisect, ExactRootAtEndpointReturnsImmediately) {
  const RootResult r = bisect([](Real x) { return x - 1; }, 1, 5);
  EXPECT_EQ(r.x, 1.0L);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Brent, FindsSqrtTwoFasterThanBisect) {
  const RootResult fast = brent(quadratic, 0, 2);
  const RootResult slow = bisect(quadratic, 0, 2);
  EXPECT_NEAR(static_cast<double>(fast.x), std::sqrt(2.0), 1e-14);
  EXPECT_LT(fast.iterations, slow.iterations);
}

TEST(Brent, HandlesSteepTranscendental) {
  // n*ln(a-1) + ln(a-3) - (n+1)ln 2, n = 5 — the Theorem-2 residual shape
  // with a logarithmic pole at 3.
  const int n = 5;
  const auto f = [n](const Real a) {
    return static_cast<Real>(n) * std::log(a - 1) + std::log(a - 3) -
           static_cast<Real>(n + 1) * std::log(Real{2});
  };
  const RootResult r = brent(f, 3 + 1e-15L, 9);
  // Verify residual is tiny and the root matches (a-1)^5 (a-3) = 64.
  const Real value = std::pow(r.x - 1, Real{5}) * (r.x - 3);
  EXPECT_NEAR(static_cast<double>(value), 64.0, 1e-9);
}

TEST(Brent, ThrowsWithoutSignChange) {
  EXPECT_THROW((void)brent(quadratic, 2, 3), NumericError);
}

TEST(Newton, ConvergesQuadratically) {
  const RootResult r = newton(
      quadratic, [](Real x) { return 2 * x; }, 1.0L);
  EXPECT_NEAR(static_cast<double>(r.x), std::sqrt(2.0), 1e-15);
  EXPECT_LE(r.iterations, 8);
}

TEST(Newton, DampingRescuesOvershoot) {
  // f(x) = atan(x) from a far start diverges for undamped Newton.
  const RootResult r = newton([](Real x) { return std::atan(x); },
                              [](Real x) { return 1 / (1 + x * x); }, 3.0L);
  EXPECT_NEAR(static_cast<double>(r.x), 0.0, 1e-10);
}

TEST(Newton, ZeroDerivativeThrows) {
  EXPECT_THROW((void)newton([](Real) { return 1.0L; },
                            [](Real) { return 0.0L; }, 0.0L),
               NumericError);
}

TEST(BracketAndSolve, ExpandsToFindRoot) {
  // Root at x = 100; start from 0 with width 1.
  const RootResult r =
      bracket_and_solve([](Real x) { return x - 100; }, 0, 1);
  EXPECT_NEAR(static_cast<double>(r.x), 100.0, 1e-9);
}

TEST(BracketAndSolve, ImmediateRootAtLowerEndpoint) {
  const RootResult r = bracket_and_solve([](Real x) { return x; }, 0, 1);
  EXPECT_EQ(r.x, 0.0L);
}

TEST(BracketAndSolve, RequiresPositiveWidth) {
  EXPECT_THROW((void)bracket_and_solve([](Real x) { return x; }, 0, 0),
               PreconditionError);
}

TEST(BracketAndSolve, ThrowsWhenNoSignChangeExists) {
  EXPECT_THROW(
      (void)bracket_and_solve([](Real) { return 1.0L; }, 0, 1),
      NumericError);
}

TEST(RootOptions, TighterToleranceImprovesResidual) {
  RootOptions loose;
  loose.tolerance = 1e-3L;
  const RootResult coarse = bisect(quadratic, 0, 2, loose);
  const RootResult fine = bisect(quadratic, 0, 2);
  EXPECT_LE(std::fabs(fine.fx), std::fabs(coarse.fx));
}

}  // namespace
}  // namespace linesearch

// Tests for util/real.hpp — tolerance semantics every other module
// depends on.
#include "util/real.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace linesearch {
namespace {

TEST(ApproxEqual, ExactValuesMatch) {
  EXPECT_TRUE(approx_equal(1.0L, 1.0L));
  EXPECT_TRUE(approx_equal(0.0L, 0.0L));
  EXPECT_TRUE(approx_equal(-3.5L, -3.5L));
}

TEST(ApproxEqual, WithinRelativeTolerance) {
  EXPECT_TRUE(approx_equal(1.0L, 1.0L + 5e-10L));
  EXPECT_TRUE(approx_equal(1e6L, 1e6L * (1 + 5e-10L)));
  EXPECT_TRUE(approx_equal(-1e6L, -1e6L * (1 + 5e-10L)));
}

TEST(ApproxEqual, OutsideRelativeTolerance) {
  EXPECT_FALSE(approx_equal(1.0L, 1.0L + 5e-8L));
  EXPECT_FALSE(approx_equal(1e6L, 1e6L * (1 + 1e-8L)));
}

TEST(ApproxEqual, AbsoluteFloorNearZero) {
  EXPECT_TRUE(approx_equal(0.0L, 5e-13L));
  EXPECT_FALSE(approx_equal(0.0L, 1e-6L));
}

TEST(ApproxEqual, NanNeverEqual) {
  EXPECT_FALSE(approx_equal(kNaN, kNaN));
  EXPECT_FALSE(approx_equal(kNaN, 1.0L));
  EXPECT_FALSE(approx_equal(1.0L, kNaN));
}

TEST(ApproxEqual, MatchingInfinitiesEqual) {
  EXPECT_TRUE(approx_equal(kInfinity, kInfinity));
  EXPECT_FALSE(approx_equal(kInfinity, -kInfinity));
  EXPECT_FALSE(approx_equal(kInfinity, 1e30L));
}

TEST(ApproxEqual, CustomTolerances) {
  EXPECT_TRUE(approx_equal(100.0L, 101.0L, 0.02L));
  EXPECT_FALSE(approx_equal(100.0L, 103.0L, 0.02L));
}

TEST(ApproxLe, StrictlyLessAlwaysHolds) {
  EXPECT_TRUE(approx_le(1.0L, 2.0L));
  EXPECT_TRUE(approx_le(-5.0L, -4.0L));
}

TEST(ApproxLe, SlightlyAboveWithinTolerance) {
  EXPECT_TRUE(approx_le(1.0L + 1e-12L, 1.0L));
  EXPECT_FALSE(approx_le(1.0L + 1e-3L, 1.0L));
}

TEST(ApproxGe, MirrorsApproxLe) {
  EXPECT_TRUE(approx_ge(2.0L, 1.0L));
  EXPECT_TRUE(approx_ge(1.0L - 1e-12L, 1.0L));
  EXPECT_FALSE(approx_ge(0.9L, 1.0L));
}

TEST(SignOf, AllThreeCases) {
  EXPECT_EQ(sign_of(3.0L), 1);
  EXPECT_EQ(sign_of(-0.25L), -1);
  EXPECT_EQ(sign_of(0.0L), 0);
}

TEST(RelativeDifference, ScalesByLargerMagnitude) {
  EXPECT_NEAR(static_cast<double>(relative_difference(100.0L, 101.0L)),
              1.0 / 101.0, 1e-12);
  // Anchored at 1 for small values.
  EXPECT_NEAR(static_cast<double>(relative_difference(0.0L, 0.5L)), 0.5,
              1e-12);
}

TEST(RelativeDifference, ZeroForEqualValues) {
  EXPECT_EQ(relative_difference(7.0L, 7.0L), 0.0L);
}

}  // namespace
}  // namespace linesearch

// Tests for util/parallel.hpp — the thread pool and deterministic loops.
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/real.hpp"

namespace linesearch {
namespace {

/// RAII guard that sets LINESEARCH_THREADS and restores it on exit.
class ThreadsEnvGuard {
 public:
  explicit ThreadsEnvGuard(const char* value) {
    const char* old = std::getenv("LINESEARCH_THREADS");
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    setenv("LINESEARCH_THREADS", value, 1);
  }
  ~ThreadsEnvGuard() {
    if (had_value_) {
      setenv("LINESEARCH_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("LINESEARCH_THREADS");
    }
  }

 private:
  std::string saved_;
  bool had_value_ = false;
};

TEST(ResolveThreadCount, ExplicitRequestWins) {
  const ThreadsEnvGuard env("3");
  EXPECT_EQ(resolve_thread_count(5), 5);
}

TEST(ResolveThreadCount, EnvOverrideApplies) {
  const ThreadsEnvGuard env("7");
  EXPECT_EQ(resolve_thread_count(0), 7);
}

TEST(ResolveThreadCount, ClampsToValidRange) {
  EXPECT_EQ(resolve_thread_count(-4), resolve_thread_count(0));
  EXPECT_EQ(resolve_thread_count(10000), kMaxThreads);
  const ThreadsEnvGuard env("not-a-number");
  EXPECT_GE(resolve_thread_count(0), 1);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> visits(257);
    parallel_for(
        visits.size(),
        [&](const std::size_t i) {
          visits[i].fetch_add(1, std::memory_order_relaxed);
        },
        threads);
    for (const std::atomic<int>& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelFor, ZeroCountIsANoop) {
  parallel_for(0, [](const std::size_t) { FAIL(); }, 8);
}

TEST(ParallelMap, ResultsLandInInputOrder) {
  const auto square = [](const std::size_t i) {
    return static_cast<Real>(i) * static_cast<Real>(i);
  };
  const std::vector<Real> serial = parallel_map(100, square, 1);
  const std::vector<Real> parallel = parallel_map(100, square, 8);
  ASSERT_EQ(serial.size(), 100u);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial[7], 49.0L);
}

TEST(ParallelFor, RethrowsLowestIndexException) {
  for (const int threads : {1, 8}) {
    try {
      parallel_for(
          64,
          [](const std::size_t i) {
            if (i == 5 || i == 41) {
              throw std::runtime_error("item " + std::to_string(i));
            }
          },
          threads);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "item 5") << "threads=" << threads;
    }
  }
}

TEST(ParallelFor, NestedCallsFallBackToSerial) {
  // A body that itself calls parallel_for must not deadlock the pool.
  std::atomic<int> total{0};
  parallel_for(
      8,
      [&](const std::size_t) {
        parallel_for(
            8,
            [&](const std::size_t) {
              total.fetch_add(1, std::memory_order_relaxed);
            },
            8);
      },
      8);
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, GrowsButNeverShrinks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2);
  pool.ensure_workers(4);
  EXPECT_EQ(pool.size(), 4);
  pool.ensure_workers(1);
  EXPECT_EQ(pool.size(), 4);
  EXPECT_THROW(ThreadPool(0), PreconditionError);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor drains the queue and joins.
  }
  EXPECT_EQ(ran.load(), 20);
}

}  // namespace
}  // namespace linesearch

// Tests for util/table.hpp.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter table({"n", "value"});
  table.add_row({"1", "9.00"});
  table.add_row({"10", "5.24"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find(" n  value"), std::string::npos);
  EXPECT_NE(out.find(" 1   9.00"), std::string::npos);
  EXPECT_NE(out.find("10   5.24"), std::string::npos);
}

TEST(TablePrinter, HeaderRuleSpansAllColumns) {
  TablePrinter table({"aa", "bb"});
  table.add_row({"1", "2"});
  const std::string out = table.to_string();
  // rule length = widths (2 + 2) + separator 2
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(TablePrinter, LeftAlignment) {
  TablePrinter table({"name", "x"});
  table.set_alignment(0, Align::kLeft);
  table.add_row({"ab", "1"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("ab    1"), std::string::npos);
}

TEST(TablePrinter, CaptionComesFirst) {
  TablePrinter table({"x"});
  table.set_caption("Table 1: results");
  table.add_row({"1"});
  const std::string out = table.to_string();
  EXPECT_EQ(out.rfind("Table 1: results", 0), 0u);
}

TEST(TablePrinter, RowWidthMismatchThrows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
}

TEST(TablePrinter, EmptyHeaderListThrows) {
  EXPECT_THROW(TablePrinter({}), PreconditionError);
}

TEST(TablePrinter, RowCountTracksRows) {
  TablePrinter table({"a"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Cell, FormatsRealsAndIntegers) {
  EXPECT_EQ(cell(3.14159L, 2), "3.14");
  EXPECT_EQ(cell(kNaN, 2), "-");
  EXPECT_EQ(cell(42LL), "42");
}

}  // namespace
}  // namespace linesearch

// util/cli: the shared argv parser behind fuzz_main, stats_main,
// serve_main, and bench_perf — both option spellings, strict numeric
// parsing, and the unknown-argument error that names the tool and lists
// every valid option.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace linesearch {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"tool"};
  argv.insert(argv.end(), args.begin(), args.end());
  return argv;
}

TEST(CliParser, ParsesBothOptionSpellings) {
  std::string socket;
  int threads = 4;
  bool verbose = false;
  CliParser cli("serve_main", "test");
  cli.add_option("socket", &socket, "PATH", "socket path");
  cli.add_option("threads", &threads, "N", "workers", 1);
  cli.add_flag("verbose", &verbose, "chatty");

  const auto argv =
      argv_of({"--socket", "/tmp/x.sock", "--threads=8", "--verbose"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()))
      << cli.error();
  EXPECT_EQ(socket, "/tmp/x.sock");
  EXPECT_EQ(threads, 8);
  EXPECT_TRUE(verbose);
}

TEST(CliParser, UnknownArgumentNamesTheToolAndListsOptions) {
  std::string socket;
  CliParser cli("serve_main", "test");
  cli.add_option("socket", &socket, "PATH", "socket path");
  const auto argv = argv_of({"--sockte", "/tmp/x.sock"});
  ASSERT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(cli.error().find("serve_main"), std::string::npos)
      << cli.error();
  EXPECT_NE(cli.error().find("--sockte"), std::string::npos) << cli.error();
  EXPECT_NE(cli.error().find("--socket"), std::string::npos) << cli.error();
}

TEST(CliParser, NumericOptionsParseStrictly) {
  int threads = 4;
  CliParser cli("stats_main", "test");
  cli.add_option("threads", &threads, "N", "workers", 1);

  const auto junk = argv_of({"--threads", "8x"});
  ASSERT_FALSE(cli.parse(static_cast<int>(junk.size()), junk.data()));
  EXPECT_NE(cli.error().find("8x"), std::string::npos) << cli.error();

  CliParser below("stats_main", "test");
  below.add_option("threads", &threads, "N", "workers", 1);
  const auto zero = argv_of({"--threads", "0"});
  ASSERT_FALSE(below.parse(static_cast<int>(zero.size()), zero.data()));
}

TEST(CliParser, MissingValueIsAnError) {
  std::string socket;
  CliParser cli("serve_main", "test");
  cli.add_option("socket", &socket, "PATH", "socket path");
  const auto argv = argv_of({"--socket"});
  ASSERT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(cli.error().find("--socket"), std::string::npos) << cli.error();
}

TEST(CliParser, Uint64OptionAcceptsLargeSeeds) {
  std::uint64_t seed = 0;
  CliParser cli("fuzz_main", "test");
  cli.add_option("seed", &seed, "S", "corpus seed");
  const auto argv = argv_of({"--seed", "18446744073709551615"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()))
      << cli.error();
  EXPECT_EQ(seed, 18446744073709551615ULL);
}

TEST(CliParser, PassthroughPrefixCollectsVerbatim) {
  int repetitions = 1;
  CliParser cli("bench_perf", "test");
  cli.add_option("repetitions", &repetitions, "N", "reps", 1);
  cli.add_passthrough_prefix("--benchmark_");
  const auto argv = argv_of(
      {"--benchmark_filter=BM_Probe", "--repetitions", "3",
       "--benchmark_min_time=0.1s"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()))
      << cli.error();
  EXPECT_EQ(repetitions, 3);
  ASSERT_EQ(cli.passthrough().size(), 2u);
  EXPECT_EQ(cli.passthrough()[0], "--benchmark_filter=BM_Probe");
  EXPECT_EQ(cli.passthrough()[1], "--benchmark_min_time=0.1s");
}

TEST(CliParser, UsageListsEveryOption) {
  std::string socket;
  bool no_cache = false;
  CliParser cli("serve_main", "always-on CR evaluation service");
  cli.add_option("socket", &socket, "PATH", "socket path");
  cli.add_flag("no-cache", &no_cache, "disable the result LRU");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("serve_main"), std::string::npos) << usage;
  EXPECT_NE(usage.find("--socket"), std::string::npos) << usage;
  EXPECT_NE(usage.find("--no-cache"), std::string::npos) << usage;
}

}  // namespace
}  // namespace linesearch

// Tests for util/error.hpp — contract helpers.
#include "util/error.hpp"

#include <gtest/gtest.h>

namespace linesearch {
namespace {

TEST(Expects, PassesOnTrue) { EXPECT_NO_THROW(expects(true, "fine")); }

TEST(Expects, ThrowsPreconditionErrorOnFalse) {
  EXPECT_THROW(expects(false, "boom"), PreconditionError);
}

TEST(Expects, MessageContainsTextAndLocation) {
  try {
    expects(false, "my-precondition");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("my-precondition"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Ensures, ThrowsInvariantErrorOnFalse) {
  EXPECT_THROW(ensures(false, "broken invariant"), InvariantError);
  EXPECT_NO_THROW(ensures(true, "ok"));
}

TEST(ErrorHierarchy, AllDeriveFromError) {
  EXPECT_THROW(
      { throw PreconditionError("x"); }, Error);
  EXPECT_THROW(
      { throw InvariantError("x"); }, Error);
  EXPECT_THROW(
      { throw NumericError("x"); }, Error);
}

TEST(ErrorHierarchy, ErrorIsRuntimeError) {
  EXPECT_THROW(
      { throw NumericError("x"); }, std::runtime_error);
}

}  // namespace
}  // namespace linesearch

// Tests for util/format.hpp.
#include "util/format.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(Fixed, BasicRounding) {
  EXPECT_EQ(fixed(3.14159L, 2), "3.14");
  EXPECT_EQ(fixed(3.146L, 2), "3.15");
  EXPECT_EQ(fixed(-2.4L, 0), "-2");
  EXPECT_EQ(fixed(9.0L, 3), "9.000");
}

TEST(Fixed, NanRendersDash) { EXPECT_EQ(fixed(kNaN, 2), "-"); }

TEST(Fixed, RejectsBadDecimals) {
  EXPECT_THROW(fixed(1.0L, -1), PreconditionError);
  EXPECT_THROW(fixed(1.0L, 31), PreconditionError);
}

TEST(Sig, SignificantDigits) {
  EXPECT_EQ(sig(1234.5678L, 4), "1235");
  EXPECT_EQ(sig(0.00012345L, 3), "0.000123");
  EXPECT_EQ(sig(kNaN, 3), "-");
}

TEST(Scientific, Format) {
  EXPECT_EQ(scientific(12345.0L, 2), "1.23e+04");
  EXPECT_EQ(scientific(kNaN, 2), "-");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // never truncates
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

TEST(Join, Pieces) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"only"}, ", "), "only");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(Seconds, RendersWithSuffix) {
  EXPECT_EQ(seconds(1.2344L), "1.234s");
  EXPECT_EQ(seconds(kNaN), "-");
}

}  // namespace
}  // namespace linesearch

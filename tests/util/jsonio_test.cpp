// Streaming JSON writer + recursive-descent parser, including the
// lossless non-finite Real codec (CR = inf must survive the wire).
#include "util/jsonio.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/real.hpp"

namespace linesearch {
namespace {

std::string emit(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream out;
  JsonWriter json(out);
  body(json);
  return out.str();
}

TEST(JsonWriter, ObjectWithScalarFields) {
  const std::string text = emit([](JsonWriter& json) {
    json.begin_object();
    json.field("name", "A(5,2)");
    json.field("n", 5);
    json.field("ok", true);
    json.end_object();
  });
  EXPECT_NE(text.find("\"name\": \"A(5,2)\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"n\": 5"), std::string::npos);
  EXPECT_NE(text.find("\"ok\": true"), std::string::npos);
  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.substr(text.size() - 2), "}\n");
}

TEST(JsonWriter, NonFiniteRealsBecomeCodecStrings) {
  const std::string text = emit([](JsonWriter& json) {
    json.begin_array();
    json.value(kInfinity);
    json.value(-kInfinity);
    json.value(kNaN);
    json.value(Real{1.5L});
    json.end_array();
  });
  EXPECT_NE(text.find("\"inf\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"-inf\""), std::string::npos);
  EXPECT_NE(text.find("\"nan\""), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
  // Finite values are bare JSON numbers, not strings.
  EXPECT_EQ(text.find("\"1.5"), std::string::npos);
}

TEST(JsonWriter, FiniteRealsRoundTripThroughTheSharedCodec) {
  const Real original = 0.1L + 0.2L;  // not exactly representable
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  json.value(original);
  json.end_array();
  std::string text = out.str();
  // Strip the array brackets/whitespace to recover the number token.
  std::string token;
  for (const char c : text) {
    if ((c >= '0' && c <= '9') || c == '.' || c == '-' || c == 'e' ||
        c == '+') {
      token += c;
    }
  }
  EXPECT_EQ(parse_real_field(token), original);
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  const std::string escaped = json_escape(std::string(1, '\x01'));
  EXPECT_EQ(escaped, "\\u0001");
}

TEST(JsonWriter, NestedStructuresAndEmptyContainers) {
  const std::string text = emit([](JsonWriter& json) {
    json.begin_object();
    json.key("empty_array").begin_array();
    json.end_array();
    json.key("empty_object").begin_object();
    json.end_object();
    json.key("nested").begin_array();
    json.begin_object();
    json.field("i", 0);
    json.end_object();
    json.begin_object();
    json.field("i", 1);
    json.end_object();
    json.end_array();
    json.end_object();
  });
  EXPECT_NE(text.find("\"empty_array\": []"), std::string::npos) << text;
  EXPECT_NE(text.find("\"empty_object\": {}"), std::string::npos);
  EXPECT_NE(text.find("\"i\": 1"), std::string::npos);
}

TEST(JsonWriter, CompactModeEmitsOneLineWithoutWhitespace) {
  std::ostringstream out;
  JsonWriter json(out, /*compact=*/true);
  json.begin_object();
  json.field("op", "cr");
  json.field("n", 5);
  json.key("xs").begin_array();
  json.value(Real{1.0L});
  json.value(kInfinity);
  json.end_array();
  json.end_object();
  EXPECT_EQ(out.str(), R"json({"op":"cr","n":5,"xs":[1,"inf"]})json");
  // The wire framing contract: no newline anywhere inside the document.
  EXPECT_EQ(out.str().find('\n'), std::string::npos);
}

TEST(JsonParser, ParsesScalarsArraysAndObjectsInOrder) {
  const JsonValue doc = parse_json(
      R"json({"name": "A(5,2)", "n": 5, "ok": true, "none": null,)json"
      R"json( "xs": [1, 2.5, -3e2]})json");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("name").as_string(), "A(5,2)");
  EXPECT_EQ(doc.at("n").as_int(), 5);
  EXPECT_EQ(doc.at("n").as_uint64(), 5u);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("none").is_null());
  const auto& xs = doc.at("xs").as_array();
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_EQ(xs[0].as_real(), 1.0L);
  EXPECT_EQ(xs[1].as_real(), 2.5L);
  EXPECT_EQ(xs[2].as_real(), -300.0L);
  // Key order is source order — fixture replay depends on it.
  EXPECT_EQ(doc.as_object().front().first, "name");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), PreconditionError);
}

TEST(JsonParser, NonFiniteRealsRoundTripLosslessly) {
  // The regression this pins: CR = inf (undetected half-line) written by
  // JsonWriter must come back as the same non-finite Real, not a string
  // error and not a clipped finite value.
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("cr", kInfinity);
  json.field("neg", -kInfinity);
  json.field("gap", kNaN);
  json.field("finite", Real{0.1L + 0.2L});
  json.end_object();

  const JsonValue doc = parse_json(out.str());
  EXPECT_TRUE(std::isinf(doc.at("cr").as_real()));
  EXPECT_GT(doc.at("cr").as_real(), 0.0L);
  EXPECT_TRUE(std::isinf(doc.at("neg").as_real()));
  EXPECT_LT(doc.at("neg").as_real(), 0.0L);
  EXPECT_TRUE(std::isnan(doc.at("gap").as_real()));
  // Finite values round-trip bit-exactly through the 21-digit codec.
  EXPECT_EQ(doc.at("finite").as_real(), 0.1L + 0.2L);
}

TEST(JsonParser, DecodesEscapesAndRejectsMalformedInput) {
  const JsonValue doc = parse_json(R"({"s": "a\"b\\c\ndA"})");
  EXPECT_EQ(doc.at("s").as_string(), "a\"b\\c\nd\x41");

  EXPECT_THROW((void)parse_json(""), PreconditionError);
  EXPECT_THROW((void)parse_json("{"), PreconditionError);
  EXPECT_THROW((void)parse_json("[1,]"), PreconditionError);
  EXPECT_THROW((void)parse_json("{\"a\" 1}"), PreconditionError);
  EXPECT_THROW((void)parse_json("tru"), PreconditionError);
  EXPECT_THROW((void)parse_json("1 2"), PreconditionError);
  EXPECT_THROW((void)parse_json("\"unterminated"), PreconditionError);
  EXPECT_THROW((void)parse_json("01x"), PreconditionError);
}

TEST(JsonParser, BoundsNestingDepth) {
  std::string deep;
  for (std::size_t i = 0; i < kMaxJsonDepth + 1; ++i) deep += '[';
  for (std::size_t i = 0; i < kMaxJsonDepth + 1; ++i) deep += ']';
  EXPECT_THROW((void)parse_json(deep), PreconditionError);
  // One level under the cap parses fine.
  std::string ok;
  for (std::size_t i = 0; i < kMaxJsonDepth; ++i) ok += '[';
  for (std::size_t i = 0; i < kMaxJsonDepth; ++i) ok += ']';
  EXPECT_TRUE(parse_json(ok).is_array());
}

TEST(JsonParser, WriterOutputReparsesToSameStructure) {
  // Emit the shape the service wire uses, parse it back, and re-emit:
  // both serializations must be byte-identical (the golden-fixture
  // replay contract).
  const auto render = [](const JsonValue* doc) {
    std::ostringstream out;
    JsonWriter json(out);
    if (doc == nullptr) {
      json.begin_object();
      json.field("id", 7);
      json.field("cr", kInfinity);
      json.key("probes").begin_array();
      json.value(Real{1.0L});
      json.value(Real{9.5L});
      json.end_array();
      json.field("ok", true);
      json.end_object();
    } else {
      json.begin_object();
      json.field("id", static_cast<int>(doc->at("id").as_int()));
      json.field("cr", doc->at("cr").as_real());
      json.key("probes").begin_array();
      for (const JsonValue& probe : doc->at("probes").as_array()) {
        json.value(probe.as_real());
      }
      json.end_array();
      json.field("ok", doc->at("ok").as_bool());
      json.end_object();
    }
    return out.str();
  };
  const std::string first = render(nullptr);
  const JsonValue doc = parse_json(first);
  EXPECT_EQ(render(&doc), first);
}

}  // namespace
}  // namespace linesearch

// Streaming JSON writer, including the non-finite Real codec.
#include "util/jsonio.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "util/csv.hpp"
#include "util/real.hpp"

namespace linesearch {
namespace {

std::string emit(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream out;
  JsonWriter json(out);
  body(json);
  return out.str();
}

TEST(JsonWriter, ObjectWithScalarFields) {
  const std::string text = emit([](JsonWriter& json) {
    json.begin_object();
    json.field("name", "A(5,2)");
    json.field("n", 5);
    json.field("ok", true);
    json.end_object();
  });
  EXPECT_NE(text.find("\"name\": \"A(5,2)\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"n\": 5"), std::string::npos);
  EXPECT_NE(text.find("\"ok\": true"), std::string::npos);
  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.substr(text.size() - 2), "}\n");
}

TEST(JsonWriter, NonFiniteRealsBecomeCodecStrings) {
  const std::string text = emit([](JsonWriter& json) {
    json.begin_array();
    json.value(kInfinity);
    json.value(-kInfinity);
    json.value(kNaN);
    json.value(Real{1.5L});
    json.end_array();
  });
  EXPECT_NE(text.find("\"inf\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"-inf\""), std::string::npos);
  EXPECT_NE(text.find("\"nan\""), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
  // Finite values are bare JSON numbers, not strings.
  EXPECT_EQ(text.find("\"1.5"), std::string::npos);
}

TEST(JsonWriter, FiniteRealsRoundTripThroughTheSharedCodec) {
  const Real original = 0.1L + 0.2L;  // not exactly representable
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  json.value(original);
  json.end_array();
  std::string text = out.str();
  // Strip the array brackets/whitespace to recover the number token.
  std::string token;
  for (const char c : text) {
    if ((c >= '0' && c <= '9') || c == '.' || c == '-' || c == 'e' ||
        c == '+') {
      token += c;
    }
  }
  EXPECT_EQ(parse_real_field(token), original);
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  const std::string escaped = json_escape(std::string(1, '\x01'));
  EXPECT_EQ(escaped, "\\u0001");
}

TEST(JsonWriter, NestedStructuresAndEmptyContainers) {
  const std::string text = emit([](JsonWriter& json) {
    json.begin_object();
    json.key("empty_array").begin_array();
    json.end_array();
    json.key("empty_object").begin_object();
    json.end_object();
    json.key("nested").begin_array();
    json.begin_object();
    json.field("i", 0);
    json.end_object();
    json.begin_object();
    json.field("i", 1);
    json.end_object();
    json.end_array();
    json.end_object();
  });
  EXPECT_NE(text.find("\"empty_array\": []"), std::string::npos) << text;
  EXPECT_NE(text.find("\"empty_object\": {}"), std::string::npos);
  EXPECT_NE(text.find("\"i\": 1"), std::string::npos);
}

}  // namespace
}  // namespace linesearch

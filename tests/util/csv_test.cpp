// Tests for util/csv.hpp.
#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape("3.14"), "3.14");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuotesAreDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a", "b"});
  csv.write_row({"1", "2,3"});
  EXPECT_EQ(out.str(), "a,b\n1,\"2,3\"\n");
}

TEST(SeriesCsv, LongFormatWithHeader) {
  std::ostringstream out;
  write_series_csv(out, {{"curve", {1.0L, 2.0L}, {9.0L, 5.24L}}});
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("series,x,y\n", 0), 0u);
  EXPECT_NE(text.find("curve,1,9"), std::string::npos);
  EXPECT_NE(text.find("curve,2,5.24"), std::string::npos);
}

TEST(SeriesCsv, MismatchedLengthsThrow) {
  std::ostringstream out;
  EXPECT_THROW(write_series_csv(out, {{"bad", {1.0L}, {}}}),
               PreconditionError);
}

TEST(SeriesCsv, MultipleSeriesConcatenate) {
  std::ostringstream out;
  write_series_csv(out, {{"a", {1.0L}, {2.0L}}, {"b", {3.0L}, {4.0L}}});
  const std::string text = out.str();
  EXPECT_NE(text.find("a,1,2"), std::string::npos);
  EXPECT_NE(text.find("b,3,4"), std::string::npos);
}

TEST(RealField, NonFiniteValuesEncodeAsWords) {
  EXPECT_EQ(encode_real_field(kInfinity), "inf");
  EXPECT_EQ(encode_real_field(-kInfinity), "-inf");
  EXPECT_EQ(encode_real_field(kNaN), "nan");
}

TEST(RealField, NonFiniteValuesParseBack) {
  EXPECT_TRUE(std::isinf(parse_real_field("inf")));
  EXPECT_GT(parse_real_field("inf"), 0);
  EXPECT_LT(parse_real_field("-inf"), 0);
  EXPECT_TRUE(std::isinf(parse_real_field("-Infinity")));
  EXPECT_TRUE(std::isnan(parse_real_field("nan")));
  EXPECT_TRUE(std::isnan(parse_real_field("NaN")));
  // Legacy human-facing tables spell missing values "-".
  EXPECT_TRUE(std::isnan(parse_real_field("-")));
}

TEST(RealField, FiniteValuesRoundTripExactly) {
  for (const Real value : {0.1L, -1.0L / 3.0L, 2.5e-19L, 123456.789L,
                           9.999999999999999999e4000L, Real{0}}) {
    const Real parsed = parse_real_field(encode_real_field(value));
    EXPECT_EQ(parsed, value) << encode_real_field(value);
  }
}

TEST(RealField, MalformedFieldsThrow) {
  EXPECT_THROW((void)parse_real_field(""), PreconditionError);
  EXPECT_THROW((void)parse_real_field("abc"), PreconditionError);
  EXPECT_THROW((void)parse_real_field("1.5x"), PreconditionError);
  EXPECT_THROW((void)parse_real_field("--2"), PreconditionError);
}

TEST(SeriesCsv, NonFiniteCrValuesRoundTrip) {
  // A ratio curve hitting an undetected half-line emits cr = inf rows;
  // the reader must hand back the identical non-finite values.
  const std::vector<Series> original = {
      {"ratio", {1.0L, 2.0L, 4.0L}, {3.5L, kInfinity, kNaN}},
      {"floor", {1.0L}, {-kInfinity}}};
  std::ostringstream out;
  write_series_csv(out, original);
  std::istringstream in(out.str());
  const std::vector<Series> parsed = read_series_csv(in);

  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "ratio");
  ASSERT_EQ(parsed[0].y.size(), 3u);
  EXPECT_EQ(parsed[0].y[0], 3.5L);
  EXPECT_TRUE(std::isinf(parsed[0].y[1]));
  EXPECT_GT(parsed[0].y[1], 0);
  EXPECT_TRUE(std::isnan(parsed[0].y[2]));
  ASSERT_EQ(parsed[1].y.size(), 1u);
  EXPECT_TRUE(std::isinf(parsed[1].y[0]));
  EXPECT_LT(parsed[1].y[0], 0);
}

TEST(SeriesCsv, ReaderRejectsMalformedInput) {
  std::istringstream missing_header("a,1,2\n");
  EXPECT_THROW((void)read_series_csv(missing_header), PreconditionError);
  std::istringstream short_row("series,x,y\na,1\n");
  EXPECT_THROW((void)read_series_csv(short_row), PreconditionError);
  std::istringstream bad_number("series,x,y\na,1,zzz\n");
  EXPECT_THROW((void)read_series_csv(bad_number), PreconditionError);
}

TEST(SeriesCsv, QuotedSeriesNamesRoundTrip) {
  const std::vector<Series> original = {{"cr, measured", {1.0L}, {2.0L}}};
  std::ostringstream out;
  write_series_csv(out, original);
  std::istringstream in(out.str());
  const std::vector<Series> parsed = read_series_csv(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, "cr, measured");
}

}  // namespace
}  // namespace linesearch

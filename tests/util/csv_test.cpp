// Tests for util/csv.hpp.
#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape("3.14"), "3.14");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuotesAreDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a", "b"});
  csv.write_row({"1", "2,3"});
  EXPECT_EQ(out.str(), "a,b\n1,\"2,3\"\n");
}

TEST(SeriesCsv, LongFormatWithHeader) {
  std::ostringstream out;
  write_series_csv(out, {{"curve", {1.0L, 2.0L}, {9.0L, 5.24L}}});
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("series,x,y\n", 0), 0u);
  EXPECT_NE(text.find("curve,1,9"), std::string::npos);
  EXPECT_NE(text.find("curve,2,5.24"), std::string::npos);
}

TEST(SeriesCsv, MismatchedLengthsThrow) {
  std::ostringstream out;
  EXPECT_THROW(write_series_csv(out, {{"bad", {1.0L}, {}}}),
               PreconditionError);
}

TEST(SeriesCsv, MultipleSeriesConcatenate) {
  std::ostringstream out;
  write_series_csv(out, {{"a", {1.0L}, {2.0L}}, {"b", {3.0L}, {4.0L}}});
  const std::string text = out.str();
  EXPECT_NE(text.find("a,1,2"), std::string::npos);
  EXPECT_NE(text.find("b,3,4"), std::string::npos);
}

}  // namespace
}  // namespace linesearch

// Tests for runtime/injector.hpp — deterministic fault injection.
#include "runtime/injector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm.hpp"
#include "eval/batch.hpp"
#include "runtime/world.hpp"
#include "sim/faults.hpp"
#include "util/error.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace {

std::vector<ControllerPtr> proportional_team(const int n, const int f,
                                             const Real extent) {
  std::vector<ControllerPtr> team;
  team.reserve(static_cast<std::size_t>(n));
  for (int robot = 0; robot < n; ++robot) {
    team.push_back(
        std::make_unique<ProportionalController>(n, f, robot, extent));
  }
  return team;
}

TEST(FaultSpecTest, FactoriesValidate) {
  EXPECT_THROW((void)FaultSpec::crash_at(-1), PreconditionError);
  EXPECT_THROW((void)FaultSpec::crash_at(kInfinity), PreconditionError);
  EXPECT_THROW((void)FaultSpec::delayed_until(-0.5L), PreconditionError);
  EXPECT_THROW((void)FaultSpec::speed_capped(0), PreconditionError);
  EXPECT_THROW((void)FaultSpec::speed_capped(1.5L), PreconditionError);
  EXPECT_THROW((void)FaultSpec::dropping_every(0), PreconditionError);
  EXPECT_EQ(FaultSpec::none().kind, FaultKind::kNone);
  EXPECT_EQ(FaultSpec::crash_at(2).kind, FaultKind::kCrashStop);
}

TEST(FaultSpecTest, KindNamesAreStable) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kNone), "none");
  EXPECT_STREQ(fault_kind_name(FaultKind::kCrashStop), "crash-stop");
  EXPECT_STREQ(fault_kind_name(FaultKind::kDelayedActivation),
               "delayed-activation");
  EXPECT_STREQ(fault_kind_name(FaultKind::kSpeedCap), "speed-cap");
  EXPECT_STREQ(fault_kind_name(FaultKind::kDirectiveDrop),
               "directive-drop");
}

TEST(FaultInjectorTest, DefaultInjectorIsNoOp) {
  const FaultInjector injector;
  EXPECT_EQ(injector.size(), 0u);
  EXPECT_FALSE(injector.any_faults());
  EXPECT_EQ(injector.spec(7).kind, FaultKind::kNone);
}

TEST(FaultInjectorTest, RandomPlanIsSeedReproducible) {
  const auto a = FaultInjector::random(42, 16);
  const auto b = FaultInjector::random(42, 16);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.spec(i).kind, b.spec(i).kind) << i;
    EXPECT_TRUE(verify::value_identical(a.spec(i).time, b.spec(i).time))
        << i;
    EXPECT_TRUE(verify::value_identical(a.spec(i).speed_cap,
                                        b.spec(i).speed_cap))
        << i;
    EXPECT_EQ(a.spec(i).drop_period, b.spec(i).drop_period) << i;
  }
  // A different seed must eventually disagree somewhere.
  const auto c = FaultInjector::random(43, 16);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.spec(i).kind != c.spec(i).kind ||
        !verify::value_identical(a.spec(i).time, c.spec(i).time)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjectorTest, CrashesOnlyPlanCrashes) {
  const auto injector = FaultInjector::random(
      7, 32, {.fault_probability = 1, .crashes_only = true});
  EXPECT_TRUE(injector.any_faults());
  for (std::size_t i = 0; i < injector.size(); ++i) {
    EXPECT_EQ(injector.spec(i).kind, FaultKind::kCrashStop) << i;
    EXPECT_TRUE(std::isfinite(injector.spec(i).time)) << i;
  }
  const std::vector<Real> times = injector.crash_times(32);
  for (const Real t : times) EXPECT_TRUE(std::isfinite(t));
}

TEST(InjectedWorldTest, CrashTruncatesMidLegAndReports) {
  std::vector<ControllerPtr> team = proportional_team(3, 1, 40);
  std::vector<FaultSpec> plan = {FaultSpec::crash_at(0.75L),
                                 FaultSpec::none(), FaultSpec::none()};
  std::vector<ExecutionReport> reports;
  const Fleet fleet =
      World().execute_team(team, FaultInjector(plan), &reports);
  EXPECT_TRUE(reports[0].crashed);
  EXPECT_EQ(reports[0].fault, FaultKind::kCrashStop);
  EXPECT_EQ(reports[0].fault_time, 0.75L);
  EXPECT_GE(reports[0].truncated_leg, 0);
  EXPECT_EQ(fleet.robot(0).end_time(), 0.75L);
  EXPECT_FALSE(reports[1].crashed);
  EXPECT_TRUE(reports[1].stopped);
}

TEST(InjectedWorldTest, DelayedActivationShiftsTheLadder) {
  std::vector<ControllerPtr> late = proportional_team(3, 1, 40);
  std::vector<ExecutionReport> reports;
  const Fleet delayed = World().execute_team(
      late,
      FaultInjector({FaultSpec::delayed_until(2), FaultSpec::none(),
                     FaultSpec::none()}),
      &reports);
  EXPECT_EQ(reports[0].fault, FaultKind::kDelayedActivation);
  EXPECT_EQ(reports[0].fault_time, 2.0L);
  // Robot 0 idles at the origin until t = 2, then runs the same ladder
  // time-shifted by 2.
  std::vector<ControllerPtr> prompt = proportional_team(3, 1, 40);
  const Fleet clean = World().execute_team(prompt);
  const auto& shifted = delayed.robot(0).waypoints();
  const auto& reference = clean.robot(0).waypoints();
  ASSERT_EQ(shifted.size(), reference.size() + 1);  // the hold waypoint
  EXPECT_EQ(shifted[1].time, 2.0L);
  EXPECT_EQ(shifted[1].position, 0.0L);
  for (std::size_t w = 1; w < reference.size(); ++w) {
    // Positions are the exact same directive targets; times accumulate
    // the same leg durations from a different origin, so they agree to
    // round-off rather than bitwise.
    EXPECT_NEAR(static_cast<double>(shifted[w + 1].time),
                static_cast<double>(reference[w].time + 2), 1e-12)
        << w;
    EXPECT_TRUE(verify::value_identical(shifted[w + 1].position,
                                        reference[w].position))
        << w;
  }
}

TEST(InjectedWorldTest, SpeedCapSlowsEveryLeg) {
  std::vector<ControllerPtr> team = proportional_team(2, 1, 20);
  std::vector<ExecutionReport> reports;
  const Fleet fleet = World().execute_team(
      team,
      FaultInjector({FaultSpec::speed_capped(0.25L), FaultSpec::none()}),
      &reports);
  EXPECT_EQ(reports[0].fault, FaultKind::kSpeedCap);
  const auto& waypoints = fleet.robot(0).waypoints();
  for (std::size_t w = 1; w < waypoints.size(); ++w) {
    const Real dt = waypoints[w].time - waypoints[w - 1].time;
    const Real dx =
        std::fabs(waypoints[w].position - waypoints[w - 1].position);
    if (dx > 0) {
      EXPECT_LE(dx / dt, 0.25L * (1 + 1e-12L)) << w;
    }
  }
}

TEST(InjectedWorldTest, DirectiveDropHoldsPosition) {
  std::vector<ControllerPtr> team = proportional_team(2, 1, 20);
  std::vector<ExecutionReport> reports;
  const Fleet fleet = World().execute_team(
      team,
      FaultInjector({FaultSpec::dropping_every(2), FaultSpec::none()}),
      &reports);
  EXPECT_EQ(reports[0].fault, FaultKind::kDirectiveDrop);
  EXPECT_GT(reports[0].dropped_directives, 0);
  // Every second move is a hold: consecutive equal positions exist.
  const auto& waypoints = fleet.robot(0).waypoints();
  bool held = false;
  for (std::size_t w = 1; w < waypoints.size(); ++w) {
    if (waypoints[w].position == waypoints[w - 1].position) held = true;
  }
  EXPECT_TRUE(held);
}

TEST(InjectedWorldTest, InjectedRunMatchesAnalyticTruncation) {
  // The determinism contract behind the crash differential: run the
  // team under a random crashes-only plan, truncate a clean run at the
  // same times, demand value-identical waypoint streams.
  const int n = 5;
  const int f = 2;
  const auto injector = FaultInjector::random(
      99, static_cast<std::size_t>(n),
      {.fault_probability = 0.7L, .horizon = 8, .crashes_only = true});
  std::vector<ControllerPtr> team = proportional_team(n, f, 40);
  const Fleet injected = World().execute_team(team, injector);
  std::vector<ControllerPtr> fresh = proportional_team(n, f, 40);
  const Fleet truncated = truncate_at_crashes(
      World().execute_team(fresh),
      injector.crash_times(static_cast<std::size_t>(n)));
  ASSERT_EQ(injected.size(), truncated.size());
  for (RobotId id = 0; id < injected.size(); ++id) {
    const auto& a = injected.robot(id).waypoints();
    const auto& b = truncated.robot(id).waypoints();
    ASSERT_EQ(a.size(), b.size()) << "robot " << id;
    for (std::size_t w = 0; w < a.size(); ++w) {
      EXPECT_TRUE(verify::value_identical(a[w].time, b[w].time))
          << id << ":" << w;
      EXPECT_TRUE(verify::value_identical(a[w].position, b[w].position))
          << id << ":" << w;
    }
  }
}

TEST(InjectedWorldTest, InjectedEvalBitIdenticalAcrossThreadCounts) {
  // Injected fleets flow through the batch evaluator bit-identically at
  // every LINESEARCH_THREADS setting, like any other fleet.
  std::vector<ControllerPtr> team = proportional_team(5, 2, 40);
  const auto injector = FaultInjector::random(
      1234, 5, {.fault_probability = 0.8L, .horizon = 10});
  const Fleet fleet = World().execute_team(team, injector);
  std::vector<CrBatchJob> jobs;
  for (const int g : {0, 1, 2}) {
    jobs.push_back({&fleet, g,
                    {.window_hi = 8, .require_finite = false}});
  }
  const auto reference = measure_cr_batch(jobs, {.threads = 1});
  for (const int threads : {2, 8}) {
    const auto parallel = measure_cr_batch(jobs, {.threads = threads});
    ASSERT_EQ(parallel.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(
          verify::value_identical(reference[i].cr, parallel[i].cr))
          << "job " << i << " threads " << threads;
      EXPECT_TRUE(verify::value_identical(reference[i].argmax,
                                          parallel[i].argmax))
          << "job " << i << " threads " << threads;
      EXPECT_EQ(reference[i].undetected_probes,
                parallel[i].undetected_probes)
          << "job " << i << " threads " << threads;
    }
  }
}

}  // namespace
}  // namespace linesearch

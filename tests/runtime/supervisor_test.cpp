// Tests for runtime/supervisor.hpp — crash detection and degraded-mode
// re-planning.
#include "runtime/supervisor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "eval/cr_eval.hpp"
#include "eval/validation.hpp"
#include "util/error.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace {

TEST(SupervisorTest, DetectionTimeFollowsTheProtocol) {
  const Supervisor supervisor(3, 1,
                              {.heartbeat_interval = 0.01L,
                               .silence_timeout = 0.01L});
  // Crash at 0.025: the missed heartbeat is the t = 0.03 slot, declared
  // at 0.04.
  EXPECT_NEAR(static_cast<double>(supervisor.detection_time_for(0.025L)),
              0.04, 1e-15);
  // Healthy robots are never declared.
  EXPECT_EQ(supervisor.detection_time_for(kInfinity), kInfinity);
  EXPECT_THROW((void)supervisor.detection_time_for(-1), PreconditionError);
}

TEST(SupervisorTest, ResilientWithoutEventsEqualsProportional) {
  // The wrapper must be a transparent ProportionalController when no
  // declaration ever fires.
  const int n = 4;
  const int f = 2;
  std::vector<ControllerPtr> resilient;
  std::vector<ControllerPtr> plain;
  for (int robot = 0; robot < n; ++robot) {
    resilient.push_back(
        std::make_unique<ResilientController>(n, f, robot, 40));
    plain.push_back(
        std::make_unique<ProportionalController>(n, f, robot, 40));
  }
  const Fleet a = World().execute_team(resilient);
  const Fleet b = World().execute_team(plain);
  for (RobotId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.robot(id).waypoints(), b.robot(id).waypoints())
        << "robot " << id;
  }
}

TEST(SupervisorTest, MakeTeamRanksSurvivors) {
  const Supervisor supervisor(4, 1);
  // Robot 1 crashes at 0.02 -> declared at 0.04 (default protocol).
  SupervisorReport report;
  const std::vector<ControllerPtr> team = supervisor.make_team(
      {kInfinity, 0.02L, kInfinity, kInfinity}, 40, &report);
  EXPECT_EQ(team.size(), 4u);
  ASSERT_EQ(report.declarations.size(), 1u);
  EXPECT_NEAR(static_cast<double>(report.declarations[0].detect_time),
              0.04, 1e-15);
  ASSERT_EQ(report.declarations[0].crashed.size(), 1u);
  EXPECT_EQ(report.declarations[0].crashed[0], 1);
  EXPECT_EQ(report.survivors, 3);
  EXPECT_EQ(report.residual_faults, 1);
  EXPECT_TRUE(report.recoverable);
}

TEST(SupervisorTest, ReplanRestoresFiniteCrWhenEnoughSurvive) {
  // (n, f) = (4, 2), one crash: survivors = 3 = f + 1, so re-planning
  // restores (f+1)-coverage and a finite CR; without the supervisor the
  // same crash leaves the CR infinite.
  const int n = 4;
  const int f = 2;
  const Real extent = 64;
  const std::vector<Real> crashes = {kInfinity, kInfinity, kInfinity,
                                     0.02L};
  SupervisorReport report;
  const Fleet recovered =
      Supervisor(n, f).run(crashes, extent, &report);
  EXPECT_TRUE(report.recoverable);
  const CrEvalOptions eval{.window_hi = 16, .require_finite = false};
  EXPECT_TRUE(
      std::isfinite(measure_cr(recovered, f, eval).cr));

  // Foil: one more crash drops the survivors below f + 1, and then no
  // amount of re-planning can restore (f+1)-coverage — every probe in
  // the window sees at most two distinct robots, so the CR is infinite
  // with or without the supervisor.
  std::vector<ControllerPtr> naive;
  for (int robot = 0; robot < n; ++robot) {
    naive.push_back(
        std::make_unique<ProportionalController>(n, f, robot, extent));
  }
  std::vector<FaultSpec> plan(static_cast<std::size_t>(n),
                              FaultSpec::none());
  plan[2] = FaultSpec::crash_at(0.02L);
  plan[3] = FaultSpec::crash_at(0.02L);
  const Fleet unsupervised =
      World().execute_team(naive, FaultInjector(plan));
  EXPECT_TRUE(std::isinf(measure_cr(unsupervised, f, eval).cr));

  SupervisorReport doomed;
  const Fleet supervised = Supervisor(n, f).run(
      {kInfinity, kInfinity, 0.02L, 0.02L}, extent, &doomed);
  EXPECT_FALSE(doomed.recoverable);
  EXPECT_EQ(doomed.survivors, 2);
  EXPECT_TRUE(std::isinf(measure_cr(supervised, f, eval).cr));
}

TEST(SupervisorTest, DegradedSweepMatchesTheorem1OnValidReductions) {
  // The acceptance grid: every regime pair (n <= 12; 41 pairs), 1..2
  // crashes.  Finite CR exactly when survivors >= f + 1, and within 5%
  // of Theorem 1 for (survivors, f) whenever the reduced pair is itself
  // in the proportional regime.
  DegradedSweepOptions options;
  options.n_max = 12;
  options.max_crashes = 2;
  const std::vector<DegradedSweepRow> rows = degraded_mode_sweep(options);
  EXPECT_EQ(proportional_regime_pairs(12).size(), 41u);
  ASSERT_FALSE(rows.empty());
  int valid_reductions = 0;
  for (const DegradedSweepRow& row : rows) {
    EXPECT_EQ(row.survivors, row.n - row.crashes);
    EXPECT_EQ(row.residual_faults, row.f);
    EXPECT_EQ(row.recovered, row.survivors >= row.f + 1)
        << "n=" << row.n << " f=" << row.f << " crashes=" << row.crashes;
    EXPECT_EQ(std::isfinite(row.measured_cr),
              row.survivors >= row.f + 1)
        << "n=" << row.n << " f=" << row.f << " crashes=" << row.crashes;
    if (in_proportional_regime(row.survivors, row.f)) {
      ++valid_reductions;
      ASSERT_TRUE(std::isfinite(row.theory_cr));
      EXPECT_NEAR(static_cast<double>(row.ratio_to_theory), 1.0, 0.05)
          << "n=" << row.n << " f=" << row.f
          << " crashes=" << row.crashes << " measured="
          << static_cast<double>(row.measured_cr) << " theory="
          << static_cast<double>(row.theory_cr);
      // Degraded search can only be slower than a fleet born with n'
      // robots: the detour must not make it cheaper.
      EXPECT_GE(row.measured_cr,
                row.theory_cr * (1 - 1e-9L));
    } else {
      EXPECT_TRUE(std::isnan(row.theory_cr));
    }
  }
  EXPECT_GT(valid_reductions, 0);
}

TEST(SupervisorTest, SequentialDeclarationsReplanTwice) {
  // Two crashes at different instants: survivors re-plan at each
  // declaration and the final fleet still has finite CR when
  // survivors >= f + 1.
  const int n = 5;
  const int f = 2;
  const std::vector<Real> crashes = {kInfinity, kInfinity, kInfinity,
                                     0.02L, 0.27L};
  SupervisorReport report;
  const Fleet fleet = Supervisor(n, f).run(crashes, 64, &report);
  EXPECT_EQ(report.declarations.size(), 2u);
  EXPECT_EQ(report.survivors, 3);
  EXPECT_TRUE(report.recoverable);
  const CrEvalOptions eval{.window_hi = 16, .require_finite = false};
  EXPECT_TRUE(std::isfinite(measure_cr(fleet, f, eval).cr));
}

TEST(SupervisorTest, RecoveryBetaFallsBackOutsideRegime) {
  EXPECT_EQ(recovery_beta(3, 1), optimal_beta(3, 1));
  // (n, f) = (2, 2) is outside f < n; (5, 1) is outside n < 2f+2: both
  // fall back to the classic beta = 3.
  EXPECT_EQ(recovery_beta(5, 1), 3.0L);
  EXPECT_EQ(recovery_beta(1, 1), 3.0L);
}

TEST(SupervisorTest, GuardsParameters) {
  EXPECT_THROW(Supervisor(2, 0), PreconditionError);
  EXPECT_THROW(Supervisor(2, 2), PreconditionError);
  EXPECT_THROW(Supervisor(3, 1, {.heartbeat_interval = 0}),
               PreconditionError);
  const Supervisor ok(3, 1);
  EXPECT_THROW((void)ok.make_team({kInfinity, kInfinity}, 40),
               PreconditionError);
}

}  // namespace
}  // namespace linesearch

// Tests for runtime/world.hpp — online execution vs the offline builder.
#include "runtime/world.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "eval/exact.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

/// Controller that never stops (runaway detection test).
class RunawayController final : public Controller {
 public:
  [[nodiscard]] std::string name() const override { return "runaway"; }
  [[nodiscard]] Directive next(Real /*time*/, Real position) override {
    return Directive::move_to(position + 1);
  }
};

/// Controller that requests an illegal speed.
class SpeedingController final : public Controller {
 public:
  [[nodiscard]] std::string name() const override { return "speeder"; }
  [[nodiscard]] Directive next(Real /*time*/, Real /*position*/) override {
    return Directive::move_to(5, 2.0L);
  }
};

/// Controller that tries to wait into the past.
class TimeTravelController final : public Controller {
 public:
  [[nodiscard]] std::string name() const override { return "timetravel"; }
  [[nodiscard]] Directive next(Real time, Real /*position*/) override {
    if (first_) {
      first_ = false;
      return Directive::move_to(2);
    }
    return Directive::wait_until(time - 1);
  }

 private:
  bool first_ = true;
};

TEST(WorldTest, ControllerDrivenAEqualsScheduleBuilder) {
  // THE headline property: executing the A(n, f) controllers online
  // reproduces the offline schedule builder's fleet waypoint for
  // waypoint.
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {2, 1}, {3, 1}, {5, 3}, {7, 4}}) {
    const Fleet online = run_proportional_controllers(n, f, 60);
    const Fleet offline = ProportionalAlgorithm(n, f).build_fleet(60);
    ASSERT_EQ(online.size(), offline.size());
    for (RobotId id = 0; id < online.size(); ++id) {
      const auto& a = online.robot(id).waypoints();
      const auto& b = offline.robot(id).waypoints();
      ASSERT_EQ(a.size(), b.size()) << "robot " << id;
      for (std::size_t w = 0; w < a.size(); ++w) {
        EXPECT_NEAR(static_cast<double>(a[w].time),
                    static_cast<double>(b[w].time), 1e-12);
        EXPECT_NEAR(static_cast<double>(a[w].position),
                    static_cast<double>(b[w].position), 1e-12);
      }
    }
  }
}

TEST(WorldTest, OnlineFleetReproducesTheorem1) {
  const Fleet online = run_proportional_controllers(3, 1, 2000);
  const Real cr = certified_cr(online, 1, {.window_hi = 16}).cr;
  EXPECT_LT(std::fabs(cr - algorithm_cr(3, 1)), 1e-14L);
}

TEST(WorldTest, ScriptedRoundTrip) {
  // Offline trajectory -> scripted controller -> world -> identical
  // trajectory.
  const Trajectory original({{0, 0}, {2, 2}, {5, 2}, {9, -2}});
  ScriptedController controller(original);
  const World world;
  const Trajectory replayed = world.execute(controller);
  EXPECT_EQ(replayed.waypoints(), original.waypoints());
}

TEST(WorldTest, RunawayControllerIsCaught) {
  RunawayController runaway;
  WorldConfig config;
  config.max_directives = 100;
  const World world(config);
  EXPECT_THROW((void)world.execute(runaway), NumericError);
}

TEST(WorldTest, RunawayErrorNamesControllerAndCount) {
  RunawayController runaway;
  WorldConfig config;
  config.max_directives = 100;
  const World world(config);
  try {
    (void)world.execute(runaway);
    FAIL() << "expected a runaway error";
  } catch (const NumericError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("'runaway'"), std::string::npos) << what;
    EXPECT_NE(what.find("100 directives"), std::string::npos) << what;
  }
}

TEST(WorldTest, ScriptedRoundTripWithWaitsUnderDisabledInjector) {
  // Script with wait segments (zero-length legs): fleet -> script ->
  // re-execute under an injector whose plan is all-healthy -> the
  // waypoint stream is byte-identical to the source trajectory.
  const Trajectory original(
      {{0, 0}, {1, 1}, {3, 1}, {4, 0}, {6, 0}, {7, -1}});
  std::vector<ControllerPtr> team;
  team.push_back(std::make_unique<ScriptedController>(original));
  const FaultInjector disabled(
      std::vector<FaultSpec>{FaultSpec::none()});
  EXPECT_FALSE(disabled.any_faults());
  std::vector<ExecutionReport> reports;
  const Fleet fleet = World().execute_team(team, disabled, &reports);
  EXPECT_EQ(fleet.robot(0).waypoints(), original.waypoints());
  EXPECT_EQ(reports[0].fault, FaultKind::kNone);
  EXPECT_FALSE(reports[0].crashed);
}

TEST(WorldTest, IllegalSpeedRejected) {
  SpeedingController speeder;
  const World world;
  EXPECT_THROW((void)world.execute(speeder), PreconditionError);
}

TEST(WorldTest, TimeTravelRejected) {
  TimeTravelController traveler;
  const World world;
  EXPECT_THROW((void)world.execute(traveler), PreconditionError);
}

TEST(WorldTest, TimeLimitTruncatesMidLeg) {
  // A runaway sweeper is truncated exactly at the limit.
  RunawayController runaway;
  WorldConfig config;
  config.time_limit = 10.5L;
  config.max_directives = 1000;
  const World world(config);
  ExecutionReport report;
  const Trajectory t = world.execute(runaway, &report);
  EXPECT_TRUE(report.time_limited);
  EXPECT_FALSE(report.stopped);
  EXPECT_EQ(t.end_time(), 10.5L);
  EXPECT_NEAR(static_cast<double>(t.end_position()), 10.5, 1e-12);
}

TEST(WorldTest, ReportsCountDirectives) {
  ScriptedController controller(Trajectory({{0, 0}, {3, 3}}));
  const World world;
  ExecutionReport report;
  (void)world.execute(controller, &report);
  EXPECT_TRUE(report.stopped);
  EXPECT_EQ(report.directives, 2);  // one move + the stop
}

TEST(WorldTest, TeamExecutionCollectsReports) {
  std::vector<ControllerPtr> team;
  team.push_back(std::make_unique<ProportionalController>(3, 1, 0, 30));
  team.push_back(std::make_unique<ProportionalController>(3, 1, 1, 30));
  team.push_back(std::make_unique<ProportionalController>(3, 1, 2, 30));
  std::vector<ExecutionReport> reports;
  const Fleet fleet = World().execute_team(team, &reports);
  EXPECT_EQ(fleet.size(), 3u);
  ASSERT_EQ(reports.size(), 3u);
  for (const ExecutionReport& report : reports) {
    EXPECT_TRUE(report.stopped);
    EXPECT_GT(report.directives, 3);
  }
}

TEST(WorldTest, GuardsConfigAndTeam) {
  EXPECT_THROW(World({.time_limit = 0}), PreconditionError);
  EXPECT_THROW(World({.time_limit = 10, .max_directives = 0}),
               PreconditionError);
  EXPECT_THROW((void)World().execute_team({}), PreconditionError);
}

}  // namespace
}  // namespace linesearch

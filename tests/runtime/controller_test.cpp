// Tests for runtime/controller.hpp — the online robot programs.
#include "runtime/controller.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/competitive.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(Directive, FactoriesSetFields) {
  const Directive move = Directive::move_to(3.5L, 0.5L);
  EXPECT_EQ(move.kind, Directive::Kind::kMoveTo);
  EXPECT_EQ(move.value, 3.5L);
  EXPECT_EQ(move.speed, 0.5L);
  const Directive wait = Directive::wait_until(7);
  EXPECT_EQ(wait.kind, Directive::Kind::kWaitUntil);
  EXPECT_EQ(wait.value, 7.0L);
  EXPECT_EQ(Directive::stop().kind, Directive::Kind::kStop);
}

TEST(ZigZagControllerTest, FirstDirectiveMeetsTheCone) {
  ZigZagController controller(3, 1, 8);
  const Directive first = controller.next(0, 0);
  EXPECT_EQ(first.kind, Directive::Kind::kMoveTo);
  EXPECT_EQ(first.value, 1.0L);
  EXPECT_NEAR(static_cast<double>(first.speed), 1.0 / 3, 1e-15);
}

TEST(ZigZagControllerTest, AlternatesWithExpansionFactor) {
  // beta = 3 => kappa = 2: legs to 1, -2, 4, -8, ...
  ZigZagController controller(3, 1, 8);
  (void)controller.next(0, 0);
  const Directive second = controller.next(3, 1);
  EXPECT_NEAR(static_cast<double>(second.value), -2.0, 1e-12);
  EXPECT_EQ(second.speed, 1.0L);
  const Directive third = controller.next(6, -2);
  EXPECT_NEAR(static_cast<double>(third.value), 4.0, 1e-12);
}

TEST(ZigZagControllerTest, StopsOneLegAfterCoverage) {
  ZigZagController controller(3, 1, 8);
  Real position = 0, time = 0;
  int legs = 0;
  while (true) {
    const Directive d = controller.next(time, position);
    if (d.kind == Directive::Kind::kStop) break;
    ASSERT_EQ(d.kind, Directive::Kind::kMoveTo);
    time += std::fabs(d.value - position) / d.speed;
    position = d.value;
    ++legs;
    ASSERT_LT(legs, 32) << "controller never stopped";
  }
  // 1, -2, 4, -8, 16 (coverage: +16/-8 both >= 8), extra -32 => 6 legs.
  EXPECT_EQ(legs, 6);
  EXPECT_NEAR(static_cast<double>(position), -32.0, 1e-9);
}

TEST(ZigZagControllerTest, RefusesWrongStart) {
  ZigZagController controller(3, 1, 8);
  EXPECT_THROW((void)controller.next(1, 0.5L), PreconditionError);
}

TEST(ZigZagControllerTest, GuardsConstruction) {
  EXPECT_THROW(ZigZagController(3, 0, 8), PreconditionError);
  EXPECT_THROW(ZigZagController(3, 2, 1), PreconditionError);
  EXPECT_THROW(ZigZagController(1, 1, 8), PreconditionError);  // beta
}

TEST(ProportionalControllerTest, RobotZeroHeadsToOne) {
  ProportionalController controller(3, 1, 0, 50);
  const Directive first = controller.next(0, 0);
  EXPECT_EQ(first.value, 1.0L);
  EXPECT_NEAR(static_cast<double>(first.speed),
              static_cast<double>(1 / optimal_beta(3, 1)), 1e-15);
}

TEST(ProportionalControllerTest, LaterRobotsStartBackwardExtended) {
  // Robot 1 of A(3,1) starts at its backward-extended negative turn.
  ProportionalController controller(3, 1, 1, 50);
  const Directive first = controller.next(0, 0);
  EXPECT_LT(first.value, 0.0L);
  EXPECT_GT(first.value, -1.0L);
}

TEST(ScriptedControllerTest, ReplaysWaypointsIncludingWaits) {
  const Trajectory original({{0, 0}, {2, 2}, {5, 2}, {9, -2}});
  ScriptedController controller(original);
  const Directive leg1 = controller.next(0, 0);
  EXPECT_EQ(leg1.kind, Directive::Kind::kMoveTo);
  EXPECT_EQ(leg1.value, 2.0L);
  EXPECT_NEAR(static_cast<double>(leg1.speed), 1.0, 1e-15);
  const Directive leg2 = controller.next(2, 2);
  EXPECT_EQ(leg2.kind, Directive::Kind::kWaitUntil);
  EXPECT_EQ(leg2.value, 5.0L);
  const Directive leg3 = controller.next(5, 2);
  EXPECT_EQ(leg3.kind, Directive::Kind::kMoveTo);
  EXPECT_EQ(leg3.value, -2.0L);
  EXPECT_EQ(controller.next(9, -2).kind, Directive::Kind::kStop);
}

TEST(Names, Informative) {
  EXPECT_NE(ZigZagController(3, 1, 8).name().find("zigzag"),
            std::string::npos);
  EXPECT_NE(ProportionalController(3, 1, 2, 50).name().find("A-robot-2"),
            std::string::npos);
}

}  // namespace
}  // namespace linesearch

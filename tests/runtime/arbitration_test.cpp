// Tests for runtime/arbitration.hpp — the quorum claim arbiter: claims
// queued not trusted, f+1 distinct corroborations to confirm, f+1
// distinct non-claimant visits to refute, crash declarations excluded
// from quorum (including the exactly-at-the-deadline regression), and
// the full supervised Byzantine pipeline.
#include "runtime/arbitration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/algorithm.hpp"
#include "runtime/supervisor.hpp"
#include "sim/faults.hpp"
#include "util/error.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace {

using verify::value_identical;

Fleet staggered_sweepers() {
  return Fleet({Trajectory({{0, 0}, {10, 10}}),
                Trajectory({{2, 0}, {12, 10}}),
                Trajectory({{4, 0}, {14, 10}})});
}

TEST(ArbitrationTest, QuorumNeverReachedWithAtMostFCorroborations) {
  const Fleet fleet = staggered_sweepers();
  // f = 1: a single claimant (f corroborations) must never confirm, no
  // matter how often it repeats itself.
  const ArbitrationReport report = arbitrate(
      fleet, 1, {{0, 4, 5}, {0, 4.5L, 5}, {0, 6, 5}});
  EXPECT_EQ(report.claims_made, 3);
  EXPECT_FALSE(report.quorum_reached);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].supporters, 1);  // distinct robots, not claims
  EXPECT_FALSE(report.verdicts[0].confirmed());
  EXPECT_TRUE(std::isnan(report.confirmed_position));
}

TEST(ArbitrationTest, ConfirmsAtTheQuorumInstant) {
  const Fleet fleet = staggered_sweepers();
  // Two distinct robots corroborate position 5 at t = 5 and t = 7: the
  // f+1 = 2 quorum completes with the later claim.
  const ArbitrationReport report =
      arbitrate(fleet, 1, {{0, 5, 5}, {1, 7, 5}});
  EXPECT_TRUE(report.quorum_reached);
  EXPECT_EQ(report.confirm_time, 7);
  EXPECT_EQ(report.confirmed_position, 5);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].supporters, 2);
  EXPECT_TRUE(report.verdicts[0].confirmed());
}

TEST(ArbitrationTest, EarliestConfirmationWinsAcrossPositions) {
  const Fleet fleet = staggered_sweepers();
  const ArbitrationReport report = arbitrate(
      fleet, 1,
      {{0, 4, 6}, {1, 9, 6}, {0, 5, 2}, {2, 6, 2}});
  EXPECT_TRUE(report.quorum_reached);
  EXPECT_EQ(report.confirmed_position, 2);  // confirmed at 6, before 9
  EXPECT_EQ(report.confirm_time, 6);
}

TEST(ArbitrationTest, RefutesAPendingClaimAfterQuorumManyVisits) {
  const Fleet fleet = staggered_sweepers();
  // Robot 0 alone claims position 4 at t = 4.  The non-claimants visit
  // 4 at t = 6 (robot 1) and t = 8 (robot 2); the second such visit is
  // the f+1 = 2 refutation quorum.
  const ArbitrationReport report = arbitrate(fleet, 1, {{0, 4, 4}});
  EXPECT_FALSE(report.quorum_reached);
  EXPECT_EQ(report.claims_refuted, 1);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_TRUE(report.verdicts[0].refuted());
  EXPECT_EQ(report.verdicts[0].refute_time, 8);
}

TEST(ArbitrationTest, RefutationWaitsForTheClaimItself) {
  const Fleet fleet = staggered_sweepers();
  // The non-claimants have long visited position 4 when robot 0 claims
  // it at t = 20; a claim cannot be refuted before it is made.
  const ArbitrationReport report = arbitrate(fleet, 1, {{0, 20, 4}});
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_TRUE(report.verdicts[0].refuted());
  EXPECT_EQ(report.verdicts[0].refute_time, 20);
}

TEST(ArbitrationTest, CrashDeclaredAtExactlyTheDeadlineDoesNotCount) {
  // THE regression this module exists to pin (the latent supervisor
  // edge): a corroboration whose robot was declared crashed at exactly
  // the candidate confirmation instant must NOT count toward quorum —
  // the declaration invalidates the corroboration on the boundary.
  // Before the fix the arbiter compared with >=, counted robot 1's
  // support at its own declaration instant, and confirmed at t = 6.
  const Fleet fleet = staggered_sweepers();
  const std::vector<Claim> claims = {{0, 4, 5}, {1, 6, 5}};

  const ArbitrationReport boundary =
      arbitrate(fleet, 1, claims, {kInfinity, 6, kInfinity});
  EXPECT_FALSE(boundary.quorum_reached)
      << "a declaration landing exactly on the corroboration deadline "
         "must invalidate the corroboration";

  // Strictly after the deadline the corroboration stands.
  const ArbitrationReport after =
      arbitrate(fleet, 1, claims, {kInfinity, 6.0000001L, kInfinity});
  EXPECT_TRUE(after.quorum_reached);
  EXPECT_EQ(after.confirm_time, 6);

  // Declared before the deadline: invalid as well.
  const ArbitrationReport before =
      arbitrate(fleet, 1, claims, {kInfinity, 5, kInfinity});
  EXPECT_FALSE(before.quorum_reached);
}

TEST(ArbitrationTest, ValidatesItsInputs) {
  const Fleet fleet = staggered_sweepers();
  EXPECT_THROW((void)arbitrate(fleet, -1, {}), PreconditionError);
  // Crash vector must be empty or fleet-sized.
  EXPECT_THROW((void)arbitrate(fleet, 1, {}, {kInfinity}),
               PreconditionError);
  // Claims must come from fleet robots with finite times.
  EXPECT_THROW((void)arbitrate(fleet, 1, {{7, 1, 1}}), PreconditionError);
  EXPECT_THROW((void)arbitrate(fleet, 1, {{0, kInfinity, 1}}),
               PreconditionError);
}

TEST(CollectClaimsTest, HonestRobotsClaimTruthfullyLiarsFabricate) {
  const Fleet fleet = staggered_sweepers();
  LiePlan plan;
  plan.liar = {false, true, false};
  plan.claims = {{}, {{1.5L, -3}, {2.5L, 7}}, {}};
  const std::vector<Claim> claims = collect_claims(fleet, 4, plan);
  // Honest robots 0 and 2 claim the target at their first visits (4 and
  // 8); liar robot 1 suppresses its t = 6 find and fabricates instead.
  ASSERT_EQ(claims.size(), 4u);
  int honest = 0;
  int fabricated = 0;
  for (const Claim& claim : claims) {
    if (claim.position == 4) {
      ++honest;
      EXPECT_TRUE(claim.robot == 0 || claim.robot == 2);
      EXPECT_EQ(claim.time, claim.robot == 0 ? 4 : 8);
    } else {
      ++fabricated;
      EXPECT_EQ(claim.robot, 1u);
    }
  }
  EXPECT_EQ(honest, 2);
  EXPECT_EQ(fabricated, 2);
}

TEST(ByzantineRunTest, FalseClaimsNeverTerminateTheSearch) {
  // A(3, 1) under a lying plan: the liar fabricates two positions; the
  // run must confirm only the true target, and every fabricated
  // position must end unconfirmed.
  const int n = 3;
  const int f = 1;
  LiePlan plan;
  plan.liar = {false, false, true};
  plan.claims = {{}, {}, {{0.5L, -3}, {1.0L, 7}}};
  const ByzantineRunReport report = run_byzantine(n, f, 64, 5, plan);
  EXPECT_TRUE(report.found());
  EXPECT_EQ(report.arbitration.confirmed_position, 5);
  for (const ClaimVerdict& verdict : report.arbitration.verdicts) {
    if (verdict.position == 5) continue;
    EXPECT_FALSE(verdict.confirmed())
        << "false claim at " << static_cast<double>(verdict.position)
        << " reached quorum";
  }
}

TEST(ByzantineRunTest, LieFreeRunMatchesTheAnalyticOrderStatistic) {
  // With nobody lying and nobody crashing, the arbiter's confirmation is
  // exactly the (f+1)-st distinct first visit of the clean schedule —
  // bit-identical to the CrashFaults-era detection path.
  const int n = 4;
  const int f = 2;
  const Real target = 7;
  LiePlan plan;
  plan.liar.assign(n, false);
  plan.claims.assign(n, {});
  const ByzantineRunReport report = run_byzantine(n, f, 64, target, plan);
  EXPECT_TRUE(report.found());
  const Fleet clean = ProportionalAlgorithm(n, f).build_fleet(64);
  EXPECT_TRUE(value_identical(report.arbitration.confirm_time,
                              clean.detection_time(target, f)));
  CrashFaults crash(std::vector<Real>(n, kInfinity));
  EXPECT_TRUE(value_identical(
      report.arbitration.confirm_time,
      detection_time_under(crash, clean, target, f)));
}

TEST(ByzantineRunTest, CrashedRobotsAreExcludedFromQuorum) {
  // (n, f) = (4, 1), target at 7, robot 3 crashes immediately.  The
  // supervised run recovers, and the arbiter must reach quorum from the
  // three survivors alone — the crashed robot's declaration bars it.
  const int n = 4;
  const int f = 1;
  LiePlan plan;
  plan.liar.assign(n, false);
  plan.claims.assign(n, {});
  const std::vector<Real> crashes = {kInfinity, kInfinity, kInfinity,
                                     0.02L};
  const ByzantineRunReport report =
      run_byzantine(n, f, 64, 7, plan, crashes);
  ASSERT_EQ(report.supervisor.declarations.size(), 1u);
  EXPECT_EQ(report.supervisor.survivors, 3);
  EXPECT_TRUE(report.found());
  // Quorum from survivors only: every counted corroboration postdates
  // the single declaration.
  EXPECT_GT(report.arbitration.confirm_time,
            report.supervisor.declarations[0].detect_time);
}

TEST(ByzantineRunTest, LiarSuppressionDelaysConfirmation) {
  // The liar is blind-silent about the true target, so confirmation
  // waits for the (f+1)-st HONEST visit — strictly later than the clean
  // detection whenever the liar would have been among the first f+1.
  const int n = 3;
  const int f = 1;
  const Real target = 5;
  const Fleet clean = ProportionalAlgorithm(n, f).build_fleet(64);
  const std::vector<Real> visits = clean.first_visit_times(target);
  // Make a liar of the earliest visitor.
  std::size_t earliest = 0;
  for (std::size_t robot = 1; robot < visits.size(); ++robot) {
    if (visits[robot] < visits[earliest]) earliest = robot;
  }
  LiePlan plan;
  plan.liar.assign(n, false);
  plan.claims.assign(n, {});
  plan.liar[earliest] = true;
  plan.claims[earliest] = {{0.25L, -2}};
  const ByzantineRunReport report = run_byzantine(n, f, 64, target, plan);
  EXPECT_TRUE(report.found());
  EXPECT_GT(report.arbitration.confirm_time,
            clean.detection_time(target, f));
  EXPECT_TRUE(value_identical(
      report.arbitration.confirm_time,
      byzantine_quorum_time(clean, target, plan.liar, f)));
}

}  // namespace
}  // namespace linesearch

// Span/counter emission of the runtime layer (satellite: previously the
// controller/world instrumentation had no test coverage at all).  The
// counters cross-check against the runtime's own ExecutionReports, so
// the test pins semantics (one span per execute, directives counted
// once per controller decision) rather than magic numbers.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/controller.hpp"
#include "runtime/world.hpp"
#include "sim/trajectory.hpp"

namespace linesearch {
namespace {

std::uint64_t counter_value(const std::string& name) {
  for (const obs::MetricSnapshot& snap :
       obs::Registry::instance().snapshot()) {
    if (snap.name == name) return snap.value;
  }
  return 0;
}

TEST(ObsRuntime, ProportionalTeamEmitsSpansAndDirectiveCounts) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out (LINESEARCH_OBS=OFF)";
  }
  obs::Registry::instance().reset();
  const int n = 3;
  const Fleet fleet = run_proportional_controllers(n, 1, 100);
  EXPECT_EQ(fleet.size(), static_cast<std::size_t>(n));

  EXPECT_EQ(counter_value("span.runtime.world.execute_team.count"), 1u);
  EXPECT_EQ(counter_value("span.runtime.world.execute.count"),
            static_cast<std::uint64_t>(n));
  // Every directive the world consumed came from one controller
  // decision, so the two layers' counters must agree exactly.
  const std::uint64_t world = counter_value("runtime.world.directives");
  EXPECT_GT(world, 0u);
  EXPECT_EQ(world, counter_value("runtime.controller.directives"));
}

TEST(ObsRuntime, WorldDirectiveCounterMatchesExecutionReports) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out (LINESEARCH_OBS=OFF)";
  }
  obs::Registry::instance().reset();
  std::vector<ControllerPtr> team;
  for (int robot = 0; robot < 4; ++robot) {
    team.push_back(
        std::make_unique<ProportionalController>(4, 2, robot, 64));
  }
  std::vector<ExecutionReport> reports;
  const World world(WorldConfig{});
  (void)world.execute_team(team, &reports);

  std::uint64_t reported = 0;
  for (const ExecutionReport& report : reports) {
    reported += static_cast<std::uint64_t>(report.directives);
  }
  EXPECT_EQ(counter_value("runtime.world.directives"), reported);
  EXPECT_EQ(counter_value("runtime.controller.directives"), reported);
  EXPECT_EQ(counter_value("span.runtime.world.execute.count"), 4u);
}

TEST(ObsRuntime, ScriptedControllerCountsDecisions) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out (LINESEARCH_OBS=OFF)";
  }
  // Script a short trajectory, replay it through the world, and check
  // the controller counter: one decision per leg (the start waypoint is
  // implicit) plus the final stop decision — waypoints in total.
  TrajectoryBuilder builder;
  builder.start_at(0, 0);
  builder.move_to_at(2, 2);
  builder.move_to_at(-1, 5);
  const Trajectory scripted = std::move(builder).build();
  const std::size_t waypoints = scripted.waypoints().size();

  obs::Registry::instance().reset();
  ScriptedController controller(scripted);
  ExecutionReport report;
  (void)World(WorldConfig{}).execute(controller, &report);
  EXPECT_TRUE(report.stopped);
  EXPECT_EQ(counter_value("runtime.controller.directives"),
            static_cast<std::uint64_t>(report.directives));
  EXPECT_EQ(counter_value("runtime.controller.directives"),
            static_cast<std::uint64_t>(waypoints));
}

}  // namespace
}  // namespace linesearch

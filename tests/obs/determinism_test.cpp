// The observability layer's core contract: every deterministic metric
// aggregates BIT-IDENTICALLY for any thread count.  These tests run the
// instrumented workloads at 1 / 2 / 8 threads and compare the entire
// deterministic snapshot, serialized, byte for byte.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adversary/game.hpp"
#include "adversary/placements.hpp"
#include "core/algorithm.hpp"
#include "eval/batch.hpp"
#include "eval/visit_cache.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/jsonio.hpp"

namespace linesearch {
namespace {

std::string deterministic_metrics_json() {
  std::ostringstream out;
  JsonWriter json(out);
  obs::write_metrics_array(json, /*deterministic_only=*/true);
  return out.str();
}

constexpr int kThreadCounts[] = {1, 2, 8};

TEST(ObsDeterminism, DenseBatchBitIdenticalAcrossThreadCounts) {
  const ProportionalAlgorithm algo(7, 4);
  const Fleet fleet = algo.build_fleet(2000);
  std::vector<CrBatchJob> jobs;
  for (int f = 0; f < static_cast<int>(fleet.size()); ++f) {
    for (const Real window : {12.0L, 24.0L, 48.0L}) {
      jobs.push_back(
          {&fleet, f, {.window_hi = window, .interior_samples = 16}});
    }
  }

  std::vector<std::string> snapshots;
  for (const int threads : kThreadCounts) {
    obs::Registry::instance().reset();
    (void)measure_cr_batch(jobs, {.threads = threads});
    snapshots.push_back(deterministic_metrics_json());
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], snapshots[2]);
  if constexpr (obs::kEnabled) {
    // Non-trivial: the workload really recorded the eval counters.
    EXPECT_NE(snapshots[0].find("eval.cr.probes"), std::string::npos);
    EXPECT_NE(snapshots[0].find("eval.visit_cache.lookups"),
              std::string::npos);
  }
}

TEST(ObsDeterminism, AdversaryGameBitIdenticalAcrossThreadCounts) {
  const Real alpha = comfortable_alpha(3, 0.8L);
  const Fleet fleet =
      ProportionalAlgorithm(3, 1).build_fleet(largest_placement(alpha) * 4);

  std::vector<std::string> snapshots;
  for (const int threads : kThreadCounts) {
    obs::Registry::instance().reset();
    GameOptions options;
    options.threads = threads;
    (void)play_theorem2_game(fleet, 1, alpha, options);
    snapshots.push_back(deterministic_metrics_json());
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], snapshots[2]);
  if constexpr (obs::kEnabled) {
    EXPECT_NE(snapshots[0].find("adversary.game.placements"),
              std::string::npos);
  }
}

TEST(ObsDeterminism, VisitCacheStatsIndependentOfPartition) {
  // The racy hits_/misses_ counters can differ between thread counts
  // (concurrent double-misses); CacheStats must not — lookups is the
  // query-stream size and entries the number of DISTINCT keys, both
  // pure functions of the query multiset.  This accounting is part of
  // the cache itself, so it holds even with LINESEARCH_OBS=OFF.
  const ProportionalAlgorithm algo(5, 2);
  const Fleet fleet = algo.build_fleet(500);
  std::vector<Real> positions;
  for (Real x = 1; x < 400; x *= 1.25L) {
    positions.push_back(x);
    positions.push_back(-x);
    positions.push_back(x);  // deliberate repeat: guaranteed hits
  }

  const auto run = [&fleet, &positions](const int threads) {
    const FleetVisitCache cache(fleet);
    std::vector<std::thread> workers;
    const std::size_t chunk =
        (positions.size() + static_cast<std::size_t>(threads) - 1) /
        static_cast<std::size_t>(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&cache, &positions, t, chunk] {
        const std::size_t begin = static_cast<std::size_t>(t) * chunk;
        const std::size_t end =
            std::min(positions.size(), begin + chunk);
        for (std::size_t i = begin; i < end; ++i) {
          for (RobotId id = 0; id < cache.fleet().size(); ++id) {
            (void)cache.first_visit(id, positions[i]);
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    return cache.stats();
  };

  const FleetVisitCache::CacheStats serial = run(1);
  EXPECT_GT(serial.lookups(), serial.entries());  // repeats really hit
  for (const int threads : {2, 8}) {
    const FleetVisitCache::CacheStats stats = run(threads);
    EXPECT_EQ(stats.lookups(), serial.lookups()) << threads;
    EXPECT_EQ(stats.entries(), serial.entries()) << threads;
    EXPECT_EQ(stats.hits(), serial.hits()) << threads;
    ASSERT_EQ(stats.slots.size(), serial.slots.size());
    for (std::size_t slot = 0; slot < stats.slots.size(); ++slot) {
      EXPECT_EQ(stats.slots[slot].lookups, serial.slots[slot].lookups);
      EXPECT_EQ(stats.slots[slot].entries, serial.slots[slot].entries);
    }
  }
}

}  // namespace
}  // namespace linesearch

// Golden behavioural counters: for every feasible (n, f) regime pair
// with n <= 12 (41 pairs, the same grid core/golden_analytic_test
// pins), a cached CR evaluation of the unbounded analytic A(n, f) fleet
// must reproduce the committed event counts EXACTLY — probe count,
// visit-cache traffic (and hence hit rate), and the analytic backend's
// window/visit query counts.  A diff here means the evaluator's work
// profile changed: maybe a real optimisation, maybe an accidental
// complexity regression — either way it must be reviewed and the
// fixture regenerated deliberately:
//
//   LS_OBS_GOLDEN_REGEN=1 tests/obs_test --gtest_filter='ObsGolden*'
//
// The fixture is compared as a serialized string (byte for byte), so
// the expected side is built with the same JsonWriter that wrote the
// file — no JSON parser needed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/game.hpp"
#include "core/algorithm.hpp"
#include "eval/batch.hpp"
#include "eval/expectation.hpp"
#include "obs/metrics.hpp"
#include "svc/query.hpp"
#include "runtime/arbitration.hpp"
#include "sim/faults.hpp"
#include "util/jsonio.hpp"

namespace linesearch {
namespace {

std::uint64_t value_of(const std::vector<obs::MetricSnapshot>& snaps,
                       const std::string& name) {
  for (const obs::MetricSnapshot& snap : snaps) {
    if (snap.name == name) return snap.value;
  }
  return 0;
}

std::vector<std::pair<int, int>> regime_pairs_up_to_12() {
  // All (n, f) with f >= 1 and f < n < 2f+2 and n <= 12: 41 pairs.
  std::vector<std::pair<int, int>> pairs;
  for (int f = 1; f <= 11; ++f) {
    for (int n = f + 1; n <= std::min(12, 2 * f + 1); ++n) {
      pairs.emplace_back(n, f);
    }
  }
  return pairs;
}

/// Event counts of one pair's evaluation, read from the registry.
struct PairCounters {
  int n = 0;
  int f = 0;
  std::uint64_t probes = 0;
  std::uint64_t lookups = 0;
  std::uint64_t inserts = 0;
  std::uint64_t window_queries = 0;
  std::uint64_t visit_queries = 0;
  std::uint64_t lie_placements = 0;
  std::uint64_t claims_made = 0;
  std::uint64_t claims_refuted = 0;
  std::uint64_t quorum_reached = 0;
  std::uint64_t expectation_evaluations = 0;
  std::uint64_t expectation_divergent = 0;
  std::uint64_t expectation_visits = 0;
  std::uint64_t expectation_scans = 0;
  std::uint64_t probabilistic_queries = 0;
};

PairCounters evaluate_pair(const int n, const int f) {
  const ProportionalAlgorithm algo(n, f);
  const Fleet fleet = algo.build_unbounded_fleet();
  obs::Registry::instance().reset();
  // Two fault budgets over the shared fleet: the second job's probe
  // positions repeat the first's, which is exactly the sweep shape the
  // visit cache exists for — so the fixture pins a REAL hit rate, not
  // the trivially-cold single-job one.
  const std::vector<CrBatchJob> jobs{
      {&fleet, f, {.window_lo = 1, .window_hi = 16}},
      {&fleet, f - 1, {.window_lo = 1, .window_hi = 16}}};
  (void)measure_cr_batch(jobs, {.threads = 1});
  // Byzantine leg: one serial lie-placement game round plus one
  // arbitrated claim stream per pair, so the fixture also pins the
  // adversary.lie_placements and runtime.claims_* counters (the claim
  // arbiter's behaviour, not just the evaluator's).  The lie plan is a
  // pure function of (n, f), the game of the fleet — both deterministic.
  GameOptions game_options;
  game_options.keep_outcomes = false;
  (void)play_byzantine_game(fleet, f, comfortable_alpha(n, 0.8L),
                            game_options);
  const LiePlan plan = random_lie_plan(
      1000u + static_cast<std::uint64_t>(16 * n + f),
      static_cast<std::size_t>(n), {.max_liars = f});
  (void)arbitrate(fleet, f, collect_claims(fleet, 5, plan));
  // Probabilistic leg: one expected-CR scan routed through the query
  // layer at a p convergent for EVERY pair (0.25 sits below the grid's
  // minimum ladder threshold, ~0.63 at (3, 1)), plus one certified-
  // divergent point evaluation past this pair's OWN threshold — so the
  // fixture pins both the convergent work profile (visit counts of the
  // geometric summation) and a nonzero divergence count per pair.
  svc::CrQuery query;
  query.n = n;
  query.f = f;
  query.window_hi = 16;
  query.regime = svc::FaultRegime::kProbabilistic;
  query.fault_p = 0.25L;
  (void)svc::evaluate_query_direct(query);
  ExpectationOptions divergent;
  divergent.p = (expectation_convergence_threshold(n, f) + 1) / 2;
  (void)expected_detection_time(fleet, 2, divergent);
  const std::vector<obs::MetricSnapshot> snaps =
      obs::Registry::instance().snapshot();
  PairCounters counters;
  counters.n = n;
  counters.f = f;
  counters.probes = value_of(snaps, "eval.cr.probes");
  counters.lookups = value_of(snaps, "eval.visit_cache.lookups");
  counters.inserts = value_of(snaps, "eval.visit_cache.inserts");
  counters.window_queries = value_of(snaps, "sim.analytic.window_queries");
  counters.visit_queries = value_of(snaps, "sim.analytic.visit_queries");
  counters.lie_placements = value_of(snaps, "adversary.lie_placements");
  counters.claims_made = value_of(snaps, "runtime.claims_made");
  counters.claims_refuted = value_of(snaps, "runtime.claims_refuted");
  counters.quorum_reached = value_of(snaps, "runtime.quorum_reached");
  counters.expectation_evaluations =
      value_of(snaps, "eval.expectation.evaluations");
  counters.expectation_divergent =
      value_of(snaps, "eval.expectation.divergent");
  counters.expectation_visits = value_of(snaps, "eval.expectation.visits");
  counters.expectation_scans = value_of(snaps, "eval.expectation.scans");
  counters.probabilistic_queries =
      value_of(snaps, "svc.probabilistic_queries");
  return counters;
}

std::string serialize(const std::vector<PairCounters>& pairs) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  // Schema /2 added the Byzantine leg (lie_placements + claims_*);
  // schema /3 adds the probabilistic leg: the expectation engine's
  // eval.expectation.* work profile and the query layer's
  // svc.probabilistic_queries count per pair.
  json.field("schema", "linesearch-golden-obs/3");
  json.field("window_lo", 1);
  json.field("window_hi", 16);
  json.key("pairs").begin_array();
  for (const PairCounters& pair : pairs) {
    json.begin_object();
    json.field("n", pair.n);
    json.field("f", pair.f);
    json.field("probes", pair.probes);
    json.field("lookups", pair.lookups);
    json.field("inserts", pair.inserts);
    // Derived, not stored separately: hits = lookups - inserts (the
    // deterministic hit count; see eval/visit_cache.hpp).
    json.field("hits", pair.lookups - pair.inserts);
    json.field("window_queries", pair.window_queries);
    json.field("visit_queries", pair.visit_queries);
    json.field("lie_placements", pair.lie_placements);
    json.field("claims_made", pair.claims_made);
    json.field("claims_refuted", pair.claims_refuted);
    json.field("quorum_reached", pair.quorum_reached);
    json.field("expectation_evaluations", pair.expectation_evaluations);
    json.field("expectation_divergent", pair.expectation_divergent);
    json.field("expectation_visits", pair.expectation_visits);
    json.field("expectation_scans", pair.expectation_scans);
    json.field("probabilistic_queries", pair.probabilistic_queries);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
  return out.str();
}

TEST(ObsGoldenCounters, AllRegimePairsMatchFixture) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out (LINESEARCH_OBS=OFF)";
  }
  const auto regime_pairs = regime_pairs_up_to_12();
  ASSERT_EQ(regime_pairs.size(), 41u);

  std::vector<PairCounters> pairs;
  pairs.reserve(regime_pairs.size());
  for (const auto& [n, f] : regime_pairs) {
    pairs.push_back(evaluate_pair(n, f));
    // Sanity independent of the fixture: the scan probed something, the
    // cache saw every probe's robot queries, and repeats really hit.
    const PairCounters& counters = pairs.back();
    EXPECT_GT(counters.probes, 0u) << "n=" << n << " f=" << f;
    EXPECT_GT(counters.lookups, counters.inserts)
        << "n=" << n << " f=" << f << ": the second job must hit";
    EXPECT_GT(counters.lie_placements, 0u) << "n=" << n << " f=" << f;
    EXPECT_GT(counters.claims_made, 0u) << "n=" << n << " f=" << f;
    EXPECT_GT(counters.expectation_evaluations, 0u)
        << "n=" << n << " f=" << f;
    EXPECT_GT(counters.expectation_divergent, 0u)
        << "n=" << n << " f=" << f;
    EXPECT_EQ(counters.expectation_scans, 1u) << "n=" << n << " f=" << f;
    EXPECT_EQ(counters.probabilistic_queries, 1u)
        << "n=" << n << " f=" << f;
  }
  const std::string actual = serialize(pairs);

  const std::string path = LS_OBS_GOLDEN_FIXTURE;
  if (std::getenv("LS_OBS_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing fixture " << path
      << " — regenerate with LS_OBS_GOLDEN_REGEN=1";
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), actual)
      << "behavioural counters diverged from the committed fixture; if "
         "the change is intended, regenerate with LS_OBS_GOLDEN_REGEN=1";
}

}  // namespace
}  // namespace linesearch

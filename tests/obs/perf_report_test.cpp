// Schema stability of the BENCH_perf.json artifact (obs/perf_report).
// CI consumers diff this file across pushes, so the keys each mode
// emits — and the keys timings-only mode must NOT emit — are pinned
// here with scaled-down options (small build_reps / window) that keep
// the test fast while exercising the exact production code path.
#include "obs/perf_report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"

namespace linesearch::obs {
namespace {

PerfReportOptions fast_options(const bool timings_only) {
  PerfReportOptions options;
  options.timings_only = timings_only;
  options.build_reps = 2;
  options.dense_coverage = 200;
  options.sweep_window_hi = 1024;
  options.degraded_n_max = 4;
  options.degraded_max_crashes = 1;
  options.byzantine_n_max = 4;
  options.svc_n_max = 4;
  options.svc_window_hi = 16;
  options.svc_warm_passes = 2;
  options.probabilistic_n_max = 4;
  options.probabilistic_p_count = 2;
  // Past (3, 1)'s ladder threshold (~0.63): the scaled-down sweep still
  // exercises the divergent-row path the summary object counts.
  options.probabilistic_p_max = 0.7L;
  options.probabilistic_mc_trials = 40;
  return options;
}

std::string report(const PerfReportOptions& options) {
  std::ostringstream out;
  write_perf_report(out, options);
  return out.str();
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(ObsPerfReport, FullModeEmitsChecksumsAndIdentityFlags) {
  const std::string json = report(fast_options(/*timings_only=*/false));
  EXPECT_TRUE(contains(json, "\"schema\": \"linesearch-bench-perf/8\""));
  EXPECT_TRUE(contains(json, "\"timings_only\": false"));
  for (const char* name :
       {"dense_cr_sweep_serial", "dense_cr_sweep_parallel",
        "certified_cr_a74", "theorem2_game_a31", "analytic_sweep_dense",
        "analytic_sweep_analytic", "kernel_sweep_scalar",
        "kernel_sweep_kernel", "kernel_sweep_analytic_scalar",
        "kernel_sweep_analytic_kernel", "degraded_sweep",
        "byzantine_sweep", "svc_load_cold", "svc_load_warm",
        "svc_restart", "probabilistic_sweep",
        "probabilistic_exact_points", "probabilistic_mc_points"}) {
    EXPECT_TRUE(contains(json, std::string("\"name\": \"") + name + "\""))
        << name;
  }
  EXPECT_TRUE(contains(json, "\"checksum\""));
  // The identity checks are the report's whole point in full mode —
  // and they must PASS: serial == parallel, dense == analytic,
  // kernel == scalar.
  EXPECT_TRUE(contains(json, "\"parallel_identical_to_serial\": true"));
  EXPECT_TRUE(contains(json, "\"analytic_identical_to_dense\": true"));
  EXPECT_TRUE(contains(json, "\"kernel_identical_to_scalar\": true"));
  EXPECT_TRUE(contains(json, "\"simd_compiled\""));
  EXPECT_TRUE(contains(json, "\"dense_speedup\""));
  EXPECT_TRUE(contains(json, "\"analytic_speedup\""));
  EXPECT_TRUE(contains(json, "\"dense_build_millis\""));
  // The degraded sweep reports a row per (n, f, crashes) plus the worst
  // relative gap to Theorem 1 over the valid reductions.
  EXPECT_TRUE(contains(json, "\"recovered_rows\""));
  EXPECT_TRUE(contains(json, "\"crashes\""));
  EXPECT_TRUE(contains(json, "\"theory_cr\""));
  EXPECT_TRUE(contains(json, "\"worst_gap_to_theory\""));
  // The byzantine sweep reports the regime rows and the feasible count.
  EXPECT_TRUE(contains(json, "\"byzantine_sweep\""));
  EXPECT_TRUE(contains(json, "\"feasible_rows\""));
  // The svc_load summary carries the closed-loop capacity numbers.
  EXPECT_TRUE(contains(json, "\"svc_load\""));
  EXPECT_TRUE(contains(json, "\"cold_qps\""));
  EXPECT_TRUE(contains(json, "\"warm_qps\""));
  EXPECT_TRUE(contains(json, "\"warm_speedup\""));
  EXPECT_TRUE(contains(json, "\"warm_p50_usec\""));
  EXPECT_TRUE(contains(json, "\"warm_p99_usec\""));
  EXPECT_TRUE(contains(json, "\"hit_rate\""));
  // The svc_restart summary carries the warm-restart round trip; the
  // restore must SUCCEED and the replayed hot set must hit the restored
  // cache (every request was cached by svc_load, so the hit rate here
  // is 1 — the docs pin >= 0.9).
  EXPECT_TRUE(contains(json, "\"svc_restart\""));
  EXPECT_TRUE(contains(json, "\"restored_ok\": true"));
  EXPECT_TRUE(contains(json, "\"entries_saved\""));
  EXPECT_TRUE(contains(json, "\"entries_restored\""));
  EXPECT_TRUE(contains(json, "\"snapshot_bytes\""));
  EXPECT_TRUE(contains(json, "\"replay_qps\""));
  EXPECT_TRUE(contains(json, "\"hit_rate\": 1"));
  // The probabilistic sweep summary: the p-grid shape, the divergence
  // count (nonzero here — p_max sits past (3, 1)'s threshold), and the
  // full-mode closed-form-vs-MC race figures.
  EXPECT_TRUE(contains(json, "\"probabilistic_sweep\""));
  EXPECT_TRUE(contains(json, "\"p_count\""));
  EXPECT_TRUE(contains(json, "\"p_max\""));
  EXPECT_TRUE(contains(json, "\"divergent_rows\""));
  EXPECT_TRUE(contains(json, "\"mc_trials\""));
  EXPECT_TRUE(contains(json, "\"exact_over_mc_speedup\""));
  EXPECT_TRUE(contains(json, "\"converges\""));
  EXPECT_TRUE(contains(json, "\"metrics\""));
}

TEST(ObsPerfReport, TimingsOnlySkipsChecksumWork) {
  const std::string json = report(fast_options(/*timings_only=*/true));
  EXPECT_TRUE(contains(json, "\"schema\": \"linesearch-bench-perf/8\""));
  EXPECT_TRUE(contains(json, "\"timings_only\": true"));
  for (const char* name :
       {"dense_cr_sweep_serial", "dense_cr_sweep_parallel",
        "certified_cr_a74", "theorem2_game_a31",
        "analytic_sweep_analytic", "kernel_sweep_scalar",
        "kernel_sweep_kernel", "kernel_sweep_analytic_scalar",
        "kernel_sweep_analytic_kernel", "degraded_sweep",
        "byzantine_sweep", "svc_load_cold", "svc_load_warm",
        "svc_restart", "probabilistic_sweep"}) {
    EXPECT_TRUE(contains(json, std::string("\"name\": \"") + name + "\""))
        << name;
  }
  // Everything whose only purpose is checksum verification is gone:
  // checksum fields, identity flags, the dense sweep counterpart, and
  // the degraded sweep's theory-gap verification field.  The kernel
  // race itself survives — its scalar leg exists for the SPEEDUP
  // timing, not for verification — but its identity flag is gone.
  EXPECT_FALSE(contains(json, "\"checksum\""));
  EXPECT_FALSE(contains(json, "parallel_identical_to_serial"));
  EXPECT_FALSE(contains(json, "analytic_identical_to_dense"));
  EXPECT_FALSE(contains(json, "analytic_sweep_dense"));
  EXPECT_FALSE(contains(json, "dense_build_millis"));
  EXPECT_FALSE(contains(json, "worst_gap_to_theory"));
  EXPECT_FALSE(contains(json, "kernel_identical_to_scalar"));
  // The closed-form-vs-MC race is pure verification overhead: both its
  // timed legs and the speedup figure are gone in timings-only mode.
  EXPECT_FALSE(contains(json, "probabilistic_exact_points"));
  EXPECT_FALSE(contains(json, "probabilistic_mc_points"));
  EXPECT_FALSE(contains(json, "mc_trials"));
  EXPECT_FALSE(contains(json, "exact_over_mc_speedup"));
  // The shared shape survives in both modes.
  EXPECT_TRUE(contains(json, "\"analytic_build_millis\""));
  EXPECT_TRUE(contains(json, "\"recovered_rows\""));
  EXPECT_TRUE(contains(json, "\"feasible_rows\""));
  EXPECT_TRUE(contains(json, "\"simd_compiled\""));
  EXPECT_TRUE(contains(json, "\"warm_qps\""));
  EXPECT_TRUE(contains(json, "\"divergent_rows\""));
  EXPECT_TRUE(contains(json, "\"metrics\""));
}

TEST(ObsPerfReport, MetricsSectionReflectsBuildMode) {
  const std::string json = report(fast_options(/*timings_only=*/true));
  if constexpr (kEnabled) {
    // The report's own workloads populate the embedded registry dump.
    EXPECT_TRUE(contains(json, "eval.cr.probes"));
  } else {
    EXPECT_FALSE(contains(json, "eval.cr.probes"));
  }
}

TEST(ObsPerfReport, RejectsDegenerateOptions) {
  PerfReportOptions options = fast_options(true);
  options.build_reps = 0;
  std::ostringstream out;
  EXPECT_ANY_THROW(write_perf_report(out, options));
}

}  // namespace
}  // namespace linesearch::obs

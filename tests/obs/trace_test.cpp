// Scoped-span tracing: entry counts are deterministic counters, elapsed
// nanos are wall-clock counters flagged non-deterministic.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "obs/metrics.hpp"

namespace linesearch::obs {
namespace {

std::optional<MetricSnapshot> find_metric(const std::string& name) {
  for (MetricSnapshot& snap : Registry::instance().snapshot()) {
    if (snap.name == name) return std::move(snap);
  }
  return std::nullopt;
}

void spanned_work() { LS_OBS_SPAN("test.trace.work"); }

TEST(ObsTrace, RegisterSpanInternsCountAndNanos) {
  const SpanHandle handle = register_span("test.trace.pair");
  const SpanHandle again = register_span("test.trace.pair");
  EXPECT_EQ(handle.count_id, again.count_id);
  EXPECT_EQ(handle.nanos_id, again.nanos_id);
  const auto count = find_metric("span.test.trace.pair.count");
  const auto nanos = find_metric("span.test.trace.pair.nanos");
  ASSERT_TRUE(count.has_value());
  ASSERT_TRUE(nanos.has_value());
  EXPECT_TRUE(count->deterministic);
  EXPECT_FALSE(nanos->deterministic);
}

TEST(ObsTrace, ScopedSpanCountsEntries) {
  Registry::instance().reset();
  for (int i = 0; i < 3; ++i) spanned_work();
  const auto count = find_metric("span.test.trace.work.count");
  if constexpr (kEnabled) {
    ASSERT_TRUE(count.has_value());
    EXPECT_EQ(count->value, 3u);
  } else {
    // OBS=OFF: LS_OBS_SPAN expands to nothing — no registration.
    EXPECT_FALSE(count.has_value());
  }
}

TEST(ObsTrace, NanosAccumulateOnExit) {
  if constexpr (!kEnabled) GTEST_SKIP() << "observability compiled out";
  Registry::instance().reset();
  const SpanHandle handle = register_span("test.trace.timed");
  { const ScopedSpan span(handle); }
  const auto count = find_metric("span.test.trace.timed.count");
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(count->value, 1u);
  // Nanos are wall-clock: only assert the counter exists and was
  // touched at most monotonically (>= 0 trivially; no timing asserts).
  EXPECT_TRUE(find_metric("span.test.trace.timed.nanos").has_value());
}

}  // namespace
}  // namespace linesearch::obs

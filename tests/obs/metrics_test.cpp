// Registry unit tests.  The Registry API is available in BOTH build
// modes (only the LS_OBS_* macros and inline helpers compile out under
// LINESEARCH_OBS=OFF), so everything here that talks to the registry
// directly runs unconditionally; only macro-mediated behaviour branches
// on obs::kEnabled.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "util/error.hpp"

namespace linesearch::obs {
namespace {

/// The registry is a process-wide singleton shared by every test in this
/// binary, so each test uses its own metric names and resets values (not
/// definitions) up front.
std::optional<MetricSnapshot> find_metric(const std::string& name) {
  for (MetricSnapshot& snap : Registry::instance().snapshot()) {
    if (snap.name == name) return std::move(snap);
  }
  return std::nullopt;
}

TEST(ObsRegistry, CounterAccumulates) {
  Registry& registry = Registry::instance();
  registry.reset();
  const MetricId id = registry.counter("test.metrics.counter");
  registry.add(id);
  registry.add(id, 41);
  const auto snap = find_metric("test.metrics.counter");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->type, MetricType::kCounter);
  EXPECT_TRUE(snap->deterministic);
  EXPECT_EQ(snap->value, 42u);
}

TEST(ObsRegistry, ReRegistrationReturnsSameId) {
  Registry& registry = Registry::instance();
  const MetricId a = registry.counter("test.metrics.rereg");
  const MetricId b = registry.counter("test.metrics.rereg");
  EXPECT_EQ(a, b);
}

TEST(ObsRegistry, ConflictingReRegistrationThrows) {
  Registry& registry = Registry::instance();
  (void)registry.counter("test.metrics.conflict");
  EXPECT_THROW((void)registry.gauge("test.metrics.conflict"), Error);
  EXPECT_THROW((void)registry.counter("test.metrics.conflict",
                                      /*deterministic=*/false),
               Error);
}

TEST(ObsRegistry, EmptyNameThrows) {
  EXPECT_THROW((void)Registry::instance().counter(""), Error);
}

TEST(ObsRegistry, GaugeMergesByMax) {
  Registry& registry = Registry::instance();
  registry.reset();
  const MetricId id = registry.gauge("test.metrics.gauge");
  registry.gauge_to(id, 7);
  registry.gauge_to(id, 3);  // lower: must not shrink the gauge
  const auto snap = find_metric("test.metrics.gauge");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->type, MetricType::kGauge);
  EXPECT_EQ(snap->value, 7u);
}

TEST(ObsRegistry, HistogramBucketEdges) {
  Registry& registry = Registry::instance();
  registry.reset();
  const MetricId id = registry.histogram("test.metrics.hist", {10, 20});
  registry.observe(id, 10);  // == bound 0: first bucket (inclusive)
  registry.observe(id, 11);  // bucket 1
  registry.observe(id, 20);  // == bound 1: bucket 1
  registry.observe(id, 21);  // past the last bound: overflow
  const auto snap = find_metric("test.metrics.hist");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->type, MetricType::kHistogram);
  EXPECT_EQ(snap->bounds, (std::vector<std::uint64_t>{10, 20}));
  EXPECT_EQ(snap->buckets, (std::vector<std::uint64_t>{1, 2, 1}));
  EXPECT_EQ(snap->count, 4u);
  EXPECT_EQ(snap->sum, 62u);
}

TEST(ObsRegistry, HistogramBoundsValidated) {
  Registry& registry = Registry::instance();
  EXPECT_THROW((void)registry.histogram("test.metrics.hist_empty", {}),
               Error);
  EXPECT_THROW(
      (void)registry.histogram("test.metrics.hist_unsorted", {20, 10}),
      Error);
  EXPECT_THROW(
      (void)registry.histogram("test.metrics.hist_dup", {10, 10}),
      Error);
}

TEST(ObsRegistry, SnapshotSortedByName) {
  Registry& registry = Registry::instance();
  (void)registry.counter("test.metrics.zzz");
  (void)registry.counter("test.metrics.aaa");
  const std::vector<MetricSnapshot> snaps = registry.snapshot();
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_LT(snaps[i - 1].name, snaps[i].name);
  }
}

TEST(ObsRegistry, ResetZeroesValuesKeepsDefinitions) {
  Registry& registry = Registry::instance();
  const MetricId id = registry.counter("test.metrics.reset");
  registry.add(id, 5);
  const std::size_t before = registry.size();
  registry.reset();
  EXPECT_EQ(registry.size(), before);
  const auto snap = find_metric("test.metrics.reset");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->value, 0u);
}

TEST(ObsRegistry, AddNamedRegistersOnFirstUse) {
  Registry& registry = Registry::instance();
  registry.reset();
  registry.add_named("test.metrics.named", 3);
  registry.add_named("test.metrics.named", 4);
  const auto snap = find_metric("test.metrics.named");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->value, 7u);
}

TEST(ObsRegistry, DeterministicSubsetDropsWallClockMetrics) {
  Registry& registry = Registry::instance();
  registry.reset();
  registry.add(registry.counter("test.metrics.det"), 1);
  registry.add(
      registry.counter("test.metrics.wall", /*deterministic=*/false), 1);
  const std::vector<MetricSnapshot> det =
      deterministic_subset(registry.snapshot());
  bool saw_det = false;
  for (const MetricSnapshot& snap : det) {
    EXPECT_TRUE(snap.deterministic) << snap.name;
    EXPECT_NE(snap.name, "test.metrics.wall");
    if (snap.name == "test.metrics.det") saw_det = true;
  }
  EXPECT_TRUE(saw_det);
}

TEST(ObsRegistry, SumsAcrossThreadSinks) {
  Registry& registry = Registry::instance();
  registry.reset();
  const MetricId id = registry.counter("test.metrics.threaded");
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&registry, id] {
      for (int i = 0; i < 1000; ++i) registry.add(id);
    });
  }
  for (std::thread& worker : workers) worker.join();
  const auto snap = find_metric("test.metrics.threaded");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->value, 4000u);
}

TEST(ObsMacros, CountMacroFollowsBuildMode) {
  Registry::instance().reset();
  LS_OBS_COUNT("test.metrics.macro", 2);
  LS_OBS_COUNT("test.metrics.macro", 3);
  const auto snap = find_metric("test.metrics.macro");
  if constexpr (kEnabled) {
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->value, 5u);
  } else {
    // OBS=OFF: the macro expands to ((void)0) — nothing registered.
    EXPECT_FALSE(snap.has_value());
  }
}

TEST(ObsMacros, ObserveMacroFollowsBuildMode) {
  Registry::instance().reset();
  LS_OBS_OBSERVE("test.metrics.macro_hist", 5, {4, 8});
  const auto snap = find_metric("test.metrics.macro_hist");
  if constexpr (kEnabled) {
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->buckets, (std::vector<std::uint64_t>{0, 1, 0}));
  } else {
    EXPECT_FALSE(snap.has_value());
  }
}

TEST(ObsExport, MetricsToJsonHasSchemaAndFlags) {
  Registry::instance().reset();
  const std::string json = metrics_to_json();
  EXPECT_NE(json.find("\"schema\": \"linesearch-metrics/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find(kEnabled ? "\"enabled\": true" : "\"enabled\": false"),
            std::string::npos);
}

}  // namespace
}  // namespace linesearch::obs

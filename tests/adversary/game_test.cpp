// Tests for adversary/game.hpp — the constructive Theorem-2 adversary.
#include "adversary/game.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "adversary/placements.hpp"
#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

/// Value-exact equality (same value, same zero sign, NaN equals NaN).
bool bit_identical(const Real a, const Real b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return a == b && std::signbit(a) == std::signbit(b);
}

Fleet fleet_for_game(const SearchStrategy& strategy, const Real alpha) {
  // Build comfortably past the largest placement so every attack point is
  // covered.
  return strategy.build_fleet(largest_placement(alpha) * 4);
}

TEST(ComfortableAlpha, BetweenThreeAndRoot) {
  for (const int n : {3, 5, 11}) {
    const Real alpha = comfortable_alpha(n);
    EXPECT_GT(alpha, 3.0L);
    EXPECT_LT(alpha, theorem2_alpha(n));
    EXPECT_TRUE(placements_feasible(n, alpha));
  }
  EXPECT_THROW((void)comfortable_alpha(3, 0.0L), PreconditionError);
  EXPECT_THROW((void)comfortable_alpha(3, 1.5L), PreconditionError);
}

TEST(Game, ForcesAtLeastAlphaAgainstTheOptimalAlgorithm) {
  // Theorem 2: EVERY algorithm with n < 2f+2 loses ratio >= alpha to the
  // placement adversary — including the paper's own A(n, f).
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {3, 1}, {3, 2}, {5, 2}, {5, 3}}) {
    const Real alpha = comfortable_alpha(n, 0.8L);
    const ProportionalAlgorithm algo(n, f);
    const GameResult result =
        play_theorem2_game(fleet_for_game(algo, alpha), f, alpha);
    EXPECT_GE(result.forced_ratio, alpha - 1e-9L)
        << "n=" << n << " f=" << f;
    // ...and never more than the strategy's proven CR.
    EXPECT_LE(result.forced_ratio, *algo.theoretical_cr() + 1e-9L);
  }
}

TEST(Game, ForcesAtLeastAlphaAgainstBaselines) {
  const int n = 3, f = 1;
  const Real alpha = comfortable_alpha(n, 0.8L);
  const GroupDoubling doubling(n, f);
  const GameResult vs_doubling =
      play_theorem2_game(fleet_for_game(doubling, alpha), f, alpha);
  EXPECT_GE(vs_doubling.forced_ratio, alpha - 1e-9L);

  const UniformOffsetZigzag uniform(n, f);
  const GameResult vs_uniform =
      play_theorem2_game(fleet_for_game(uniform, alpha), f, alpha);
  EXPECT_GE(vs_uniform.forced_ratio, alpha - 1e-9L);
}

TEST(Game, TwoGroupSplitEscapesThePlacementAdversary) {
  // With n >= 2f+2 Theorem 2 does not apply; the split detects at |x|
  // always, so even the adversary's best placement only yields ratio 1.
  const int n = 4, f = 1;
  const Real alpha = comfortable_alpha(n, 0.8L);
  const TwoGroupSplit split(n, f);
  const GameResult result =
      play_theorem2_game(fleet_for_game(split, alpha), f, alpha);
  EXPECT_NEAR(static_cast<double>(result.forced_ratio), 1.0, 1e-9);
}

TEST(Game, BestOutcomeIsConsistent) {
  const int n = 3, f = 1;
  const Real alpha = comfortable_alpha(n, 0.7L);
  const ProportionalAlgorithm algo(n, f);
  const Fleet fleet = fleet_for_game(algo, alpha);
  const GameResult result = play_theorem2_game(fleet, f, alpha);
  // best is one of the outcomes and attains forced_ratio.
  EXPECT_EQ(result.best.ratio, result.forced_ratio);
  EXPECT_NEAR(static_cast<double>(result.best.detection_time /
                                  std::fabs(result.best.target)),
              static_cast<double>(result.forced_ratio), 1e-12);
  // The chosen fault set has at most f members and reproduces the time.
  int faults = 0;
  for (const bool b : result.best.faults) faults += b ? 1 : 0;
  EXPECT_LE(faults, f);
  EXPECT_EQ(fleet.detection_time_with_faults(result.best.target,
                                             result.best.faults),
            result.best.detection_time);
}

TEST(Game, OutcomesCoverAllSignedPlacements) {
  const int n = 3, f = 1;
  const Real alpha = comfortable_alpha(n, 0.7L);
  const ProportionalAlgorithm algo(n, f);
  const GameResult result =
      play_theorem2_game(fleet_for_game(algo, alpha), f, alpha);
  // {±1, ±x_2, ±x_1, ±x_0} = 8 placements.
  EXPECT_EQ(result.outcomes.size(), 2 * (static_cast<std::size_t>(n) + 1));
}

TEST(Game, KeepOutcomesFalseStillFindsBest) {
  const int n = 3, f = 1;
  const Real alpha = comfortable_alpha(n, 0.7L);
  const ProportionalAlgorithm algo(n, f);
  GameOptions options;
  options.keep_outcomes = false;
  const GameResult result =
      play_theorem2_game(fleet_for_game(algo, alpha), f, alpha, options);
  EXPECT_TRUE(result.outcomes.empty());
  EXPECT_GE(result.forced_ratio, alpha - 1e-9L);
  EXPECT_EQ(result.best.ratio, result.forced_ratio);
}

TEST(Game, AttackTurningPointsApproachesTrueCr) {
  // Adding turning-point attacks pushes the forced ratio up towards the
  // strategy's actual competitive ratio.
  const int n = 3, f = 1;
  const Real alpha = comfortable_alpha(n, 0.5L);
  const ProportionalAlgorithm algo(n, f);
  const Fleet fleet = fleet_for_game(algo, alpha);
  const GameResult plain = play_theorem2_game(fleet, f, alpha);
  GameOptions options;
  options.attack_turning_points = true;
  const GameResult sharp = play_theorem2_game(fleet, f, alpha, options);
  EXPECT_GE(sharp.forced_ratio, plain.forced_ratio - 1e-12L);
  EXPECT_LE(sharp.forced_ratio, *algo.theoretical_cr() + 1e-9L);
  // For A(3,1) the turning-point attack should get quite close to 5.23.
  EXPECT_GT(sharp.forced_ratio, *algo.theoretical_cr() - 0.2L);
}

TEST(Game, UndefendedPlacementReportsInfiniteRatio) {
  // A fleet that never goes left loses instantly at the first negative
  // placement.
  const Fleet fleet({Trajectory({{0, 0}, {40, 40}}),
                     Trajectory({{0, 0}, {40, 40}}),
                     Trajectory({{0, 0}, {40, 40}})});
  const Real alpha = comfortable_alpha(3, 0.8L);
  const GameResult result = play_theorem2_game(fleet, 1, alpha);
  EXPECT_TRUE(std::isinf(result.forced_ratio));
}

TEST(Game, InfeasibleAlphaThrows) {
  const Fleet fleet({Trajectory({{0, 0}, {40, 40}})});
  EXPECT_THROW((void)play_theorem2_game(fleet, 0, 9.5L), PreconditionError);
}

TEST(Game, TieBreakDeterministicAcrossThreadCounts) {
  // 50 seeded instances: the parallel game must pick the IDENTICAL
  // winning placement as the serial one — same target, same ratio, same
  // fault set — not merely an equally-good one.  This is the tie-break
  // contract: ties are resolved by placement order, independent of which
  // worker finishes first.
  int checked = 0;
  for (std::uint64_t seed = 1; checked < 50; ++seed) {
    // Small deterministic instance mix without any RNG dependency:
    // derive (n, f, alpha shrink) from the seed.
    const int f = 1 + static_cast<int>(seed % 4);
    const int n = f + 1 + static_cast<int>((seed / 4) % static_cast<std::uint64_t>(f + 1));
    if (n >= 2 * f + 2) continue;
    const Real shrink = 0.5L + 0.1L * static_cast<Real>(seed % 5);
    const Real alpha = comfortable_alpha(n, shrink);
    const Fleet fleet =
        ProportionalAlgorithm(n, f).build_fleet(largest_placement(alpha) * 4);

    const GameOptions serial_options{.attack_turning_points = true,
                                     .keep_outcomes = true,
                                     .threads = 1};
    const GameResult serial =
        play_theorem2_game(fleet, f, alpha, serial_options);
    for (const int threads : {2, 4, 8}) {
      GameOptions parallel_options = serial_options;
      parallel_options.threads = threads;
      const GameResult parallel =
          play_theorem2_game(fleet, f, alpha, parallel_options);

      ASSERT_TRUE(bit_identical(parallel.forced_ratio, serial.forced_ratio))
          << "seed " << seed << " threads " << threads;
      // The winner must be the same placement, not just the same score.
      ASSERT_TRUE(bit_identical(parallel.best.target, serial.best.target))
          << "seed " << seed << " threads " << threads;
      ASSERT_TRUE(bit_identical(parallel.best.detection_time,
                                serial.best.detection_time));
      ASSERT_EQ(parallel.best.faults, serial.best.faults);
      // And the full outcome list must match in order.
      ASSERT_EQ(parallel.outcomes.size(), serial.outcomes.size());
      for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
        ASSERT_TRUE(bit_identical(parallel.outcomes[i].ratio,
                                  serial.outcomes[i].ratio))
            << "seed " << seed << " outcome " << i;
      }
    }
    ++checked;
  }
}

}  // namespace
}  // namespace linesearch

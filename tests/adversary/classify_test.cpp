// Tests for adversary/classify.hpp — Figure 6 and Lemmas 6-7.
#include "adversary/classify.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/zigzag.hpp"

#include "util/error.hpp"

namespace linesearch {
namespace {

// A canonical positive trajectory for x = 3: 0 -> 3 -> -3 (visits 1, 3,
// -1, -3 in that order).
Trajectory positive_for_3() {
  TrajectoryBuilder b;
  b.start_at(0, 0);
  b.move_to(3).move_to(-3);
  return std::move(b).build();
}

// Mirror image: negative trajectory for x = 3.
Trajectory negative_for_3() {
  TrajectoryBuilder b;
  b.start_at(0, 0);
  b.move_to(-3).move_to(3);
  return std::move(b).build();
}

// Visits 1, -1, 3, -3: neither order.
Trajectory scrambled_for_3() {
  TrajectoryBuilder b;
  b.start_at(0, 0);
  b.move_to(1.5L).move_to(-1.5L).move_to(3).move_to(-3);
  return std::move(b).build();
}

TEST(CheckpointTimes, OrderedAsDefined) {
  const std::array<Real, 4> t = checkpoint_times(positive_for_3(), 3);
  // Order of array: [-x, -1, 1, x] = [-3, -1, 1, 3].
  EXPECT_EQ(t[2], 1.0L);   // +1 at t=1
  EXPECT_EQ(t[3], 3.0L);   // +3 at t=3
  EXPECT_EQ(t[1], 7.0L);   // -1 at t=3+4
  EXPECT_EQ(t[0], 9.0L);   // -3 at t=3+6
}

TEST(CheckpointTimes, InfinityForMissedPoints) {
  const Trajectory half({{0, 0}, {5, 5}});
  const std::array<Real, 4> t = checkpoint_times(half, 2);
  EXPECT_TRUE(std::isinf(t[0]));
  EXPECT_TRUE(std::isinf(t[1]));
  EXPECT_EQ(t[2], 1.0L);
  EXPECT_EQ(t[3], 2.0L);
}

TEST(CheckpointTimes, RequiresXAboveOne) {
  EXPECT_THROW((void)checkpoint_times(positive_for_3(), 1), PreconditionError);
}

TEST(Classify, PositiveNegativeNeitherIncomplete) {
  EXPECT_EQ(classify_trajectory(positive_for_3(), 3),
            TrajectoryClass::kPositive);
  EXPECT_EQ(classify_trajectory(negative_for_3(), 3),
            TrajectoryClass::kNegative);
  EXPECT_EQ(classify_trajectory(scrambled_for_3(), 3),
            TrajectoryClass::kNeither);
  EXPECT_EQ(classify_trajectory(Trajectory({{0, 0}, {5, 5}}), 3),
            TrajectoryClass::kIncomplete);
}

TEST(Classify, ToStringNames) {
  EXPECT_EQ(to_string(TrajectoryClass::kPositive), "positive");
  EXPECT_EQ(to_string(TrajectoryClass::kNegative), "negative");
  EXPECT_EQ(to_string(TrajectoryClass::kNeither), "neither");
  EXPECT_EQ(to_string(TrajectoryClass::kIncomplete), "incomplete");
}

TEST(Lemma6, EarlyBothVisitsForcePositiveOrNegative) {
  // Any unit-speed trajectory visiting ±x strictly before 3x+2 must be
  // positive or negative for x.  Exercise the premise with the two
  // canonical shapes and confirm the classification.
  const Real x = 3;
  EXPECT_TRUE(visits_both_early(positive_for_3(), x));
  EXPECT_EQ(classify_trajectory(positive_for_3(), x),
            TrajectoryClass::kPositive);
  EXPECT_TRUE(visits_both_early(negative_for_3(), x));
  EXPECT_EQ(classify_trajectory(negative_for_3(), x),
            TrajectoryClass::kNegative);
}

TEST(Lemma6, SlowTrajectryFailsThePremise) {
  // The scrambled trajectory reaches -3 at t = 1.5+3+4.5+6 = 15 > 3*3+2.
  EXPECT_FALSE(visits_both_early(scrambled_for_3(), 3));
}

TEST(Lemma6, ContrapositiveOnZigzags) {
  // Sweep cone zig-zags; whenever visits_both_early(x) holds, the class
  // must be positive or negative (Lemma 6 verbatim).
  for (const Real beta : {1.5L, 2.0L, 3.0L}) {
    const Trajectory t =
        make_origin_zigzag({.beta = beta, .first_turn = 1,
                            .min_coverage = 100});
    for (const Real x : {1.5L, 2.0L, 4.0L, 7.5L, 20.0L}) {
      if (visits_both_early(t, x)) {
        const TrajectoryClass c = classify_trajectory(t, x);
        EXPECT_TRUE(c == TrajectoryClass::kPositive ||
                    c == TrajectoryClass::kNegative)
            << "beta=" << static_cast<double>(beta)
            << " x=" << static_cast<double>(x) << " got " << to_string(c);
      }
    }
  }
}

TEST(Lemma7, PositiveTrajectoryCannotReachBothYEarly) {
  // If a robot follows a positive/negative trajectory for x, it cannot
  // visit both ±y before 2x + y.
  const Real x = 3;
  for (const Real y : {1.0L, 2.0L, 3.0L}) {
    EXPECT_GE(both_visited_time(positive_for_3(), y), 2 * x + y - 1e-12L)
        << static_cast<double>(y);
    EXPECT_GE(both_visited_time(negative_for_3(), y), 2 * x + y - 1e-12L)
        << static_cast<double>(y);
  }
}

TEST(Lemma7, BothVisitedTimeIsMaxOfFirstVisits) {
  const Trajectory t = positive_for_3();
  // ±1: +1 at t=1, -1 at t=7 -> both by 7.
  EXPECT_EQ(both_visited_time(t, 1), 7.0L);
  // ±3: +3 at 3, -3 at 9.
  EXPECT_EQ(both_visited_time(t, 3), 9.0L);
}

TEST(Lemma7, InfinityWhenOneSideMissed) {
  EXPECT_TRUE(std::isinf(
      both_visited_time(Trajectory({{0, 0}, {5, 5}}), 2)));
}

TEST(Classify, ZigzagStartingRightIsPositiveForReachableX) {
  // A doubling zig-zag that goes right first: for x between 1 and its
  // first turning point... take first_turn = 4 so x = 3 is visited going
  // out: order 1, 3(=x), then -1, -x later: positive.
  const Trajectory t =
      make_origin_zigzag({.beta = 3, .first_turn = 4, .min_coverage = 40});
  EXPECT_EQ(classify_trajectory(t, 3), TrajectoryClass::kPositive);
}

TEST(Classify, MirroredZigzagIsNegative) {
  const Trajectory t =
      make_origin_zigzag({.beta = 3, .first_turn = -4, .min_coverage = 40});
  EXPECT_EQ(classify_trajectory(t, 3), TrajectoryClass::kNegative);
}

}  // namespace
}  // namespace linesearch

// Tests for adversary/placements.hpp — Figure 7 / Eqns 16-20.
#include "adversary/placements.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/lower_bound.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(Feasibility, TrueBelowRootFalseAbove) {
  for (const int n : {2, 3, 5, 11}) {
    const Real root = theorem2_alpha(n);
    EXPECT_TRUE(placements_feasible(n, root - 1e-6L)) << n;
    EXPECT_FALSE(placements_feasible(n, root + 1e-6L)) << n;
  }
}

TEST(Feasibility, AlphaAtOrBelowThreeIsInfeasible) {
  EXPECT_FALSE(placements_feasible(3, 3.0L));
  EXPECT_FALSE(placements_feasible(3, 2.0L));
}

TEST(Placements, SortedIncreasingWithOneFirst) {
  const std::vector<Real> p = adversary_placements(5, 3.4L);
  ASSERT_EQ(p.size(), 6u);  // {1, x_4, ..., x_0}
  EXPECT_EQ(p.front(), 1.0L);
  EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));
  // Eq. 20: strictly increasing, all beyond 1.
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_GT(p[i], p[i - 1]);
    EXPECT_GT(p[i], 1.0L);
  }
}

TEST(Placements, LargestIsTwoOverAlphaMinus3) {
  const Real alpha = 3.5L;
  const std::vector<Real> p = adversary_placements(3, alpha);
  EXPECT_NEAR(static_cast<double>(p.back()),
              static_cast<double>(largest_placement(alpha)), 1e-12);
  EXPECT_NEAR(static_cast<double>(largest_placement(alpha)), 4.0, 1e-12);
}

TEST(Placements, ConsecutiveRatioIsAlphaMinus1Over2) {
  // Eq. 16: x_i = (alpha-1)/2 * x_{i+1}, so walking the sorted list
  // upward (x_{n-1} -> x_0) multiplies by (alpha-1)/2 each step.
  const Real alpha = 3.3L;
  const std::vector<Real> p = adversary_placements(4, alpha);
  for (std::size_t i = 2; i < p.size(); ++i) {  // skip the leading 1
    EXPECT_NEAR(static_cast<double>(p[i] / p[i - 1]),
                static_cast<double>((alpha - 1) / 2), 1e-10);
  }
}

TEST(Placements, InfeasibleAlphaThrows) {
  const Real too_big = theorem2_alpha(3) + 0.1L;
  EXPECT_THROW((void)adversary_placements(3, too_big), PreconditionError);
  EXPECT_THROW((void)adversary_placements(3, 3.0L), PreconditionError);
}

TEST(Placements, AtTheRootTheChainIsTight) {
  // At alpha = theorem2_alpha(n), x_{n-1} == (alpha-1)/2 exactly (the
  // feasibility inequality is an equality), making every link in the
  // proof's induction tight.
  const int n = 7;
  const Real alpha = theorem2_alpha(n);
  const std::vector<Real> p = adversary_placements(n, alpha);
  EXPECT_NEAR(static_cast<double>(p[1]),  // x_{n-1}
              static_cast<double>((alpha - 1) / 2), 1e-8);
}

TEST(LargestPlacement, GrowsAsAlphaApproachesThree) {
  EXPECT_GT(largest_placement(3.01L), largest_placement(3.5L));
  EXPECT_THROW((void)largest_placement(3.0L), PreconditionError);
}

}  // namespace
}  // namespace linesearch

// Fuzzer layer: deterministic generation, oracle wiring, shrinking.
#include "verify/fuzz.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "eval/expectation.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace verify {
namespace {

bool same_instance(const FuzzInstance& a, const FuzzInstance& b) {
  if (a.seed != b.seed || a.kind != b.kind || a.injection != b.injection ||
      a.n != b.n || a.f != b.f || a.mirrored != b.mirrored ||
      a.query_regime != b.query_regime) {
    return false;
  }
  if (!value_identical(a.fault_p, b.fault_p)) return false;
  if (!value_identical(a.beta, b.beta) ||
      !value_identical(a.extent, b.extent) ||
      !value_identical(a.window_lo, b.window_lo) ||
      !value_identical(a.window_hi, b.window_hi)) {
    return false;
  }
  if (a.magnitudes.size() != b.magnitudes.size() ||
      a.targets.size() != b.targets.size() ||
      a.crash_times.size() != b.crash_times.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.magnitudes.size(); ++i) {
    if (!value_identical(a.magnitudes[i], b.magnitudes[i])) return false;
  }
  for (std::size_t i = 0; i < a.targets.size(); ++i) {
    if (!value_identical(a.targets[i], b.targets[i])) return false;
  }
  for (std::size_t i = 0; i < a.crash_times.size(); ++i) {
    if (!value_identical(a.crash_times[i], b.crash_times[i])) return false;
  }
  if (a.lies.liar != b.lies.liar ||
      a.lies.claims.size() != b.lies.claims.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.lies.claims.size(); ++i) {
    if (a.lies.claims[i].size() != b.lies.claims[i].size()) return false;
    for (std::size_t k = 0; k < a.lies.claims[i].size(); ++k) {
      if (!value_identical(a.lies.claims[i][k].time,
                           b.lies.claims[i][k].time) ||
          !value_identical(a.lies.claims[i][k].position,
                           b.lies.claims[i][k].position)) {
        return false;
      }
    }
  }
  return true;
}

TEST(SplitMix, DeterministicStream) {
  SplitMix64 a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, UniformStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Real x = rng.uniform(1.5L, 4.0L);
    EXPECT_GE(x, 1.5L);
    EXPECT_LT(x, 4.0L);
    const int k = rng.uniform_int(-3, 3);
    EXPECT_GE(k, -3);
    EXPECT_LE(k, 3);
  }
}

TEST(Fuzz, GenerationIsDeterministic) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xDEADBEEFULL}) {
    EXPECT_TRUE(same_instance(generate_instance(seed),
                              generate_instance(seed)))
        << "seed " << seed;
  }
}

TEST(Fuzz, SeedsCoverEveryFleetKind) {
  std::set<FleetKind> kinds;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    kinds.insert(generate_instance(seed).kind);
  }
  EXPECT_EQ(kinds.size(), 12u);
}

TEST(Fuzz, GeneratedInstancesAreValid) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const FuzzInstance instance = generate_instance(seed);
    EXPECT_GE(instance.n, 1) << seed;
    EXPECT_GE(instance.f, 0) << seed;
    EXPECT_LT(instance.f, instance.n) << seed;
    EXPECT_GT(instance.window_hi, instance.window_lo) << seed;
    EXPECT_GE(instance.extent, instance.window_hi) << seed;
    EXPECT_FALSE(instance.targets.empty()) << seed;
    // Building must not throw and must honour the coverage contract.
    const Fleet fleet = build_fuzz_fleet(instance);
    EXPECT_EQ(static_cast<int>(fleet.size()), instance.n) << seed;
  }
}

TEST(Fuzz, CleanSeedRunsAllOracles) {
  // Deterministic search for the first byzantine-lies seed: the kind
  // with the fullest engine set.
  for (std::uint64_t seed = 1;; ++seed) {
    const FuzzInstance instance = generate_instance(seed);
    if (instance.kind != FleetKind::kByzantineLies) continue;
    const FuzzOutcome outcome = run_instance(instance);
    EXPECT_TRUE(outcome.ok()) << outcome.describe();
    EXPECT_EQ(outcome.invariants.size(), 11u);
    // run_differentials' six engines plus the byzantine quorum race
    // plus the dense-vs-analytic backend differential.
    EXPECT_EQ(outcome.differentials.size(), 8u);
    EXPECT_EQ(outcome.primary_failure(), "");
    break;
  }
}

TEST(Fuzz, ConeEscapeInjectionFailsConeOracle) {
  // Find an injectable (cone-claiming) seed deterministically.
  for (std::uint64_t seed = 1;; ++seed) {
    FuzzInstance instance = generate_instance(seed);
    if (instance.kind == FleetKind::kClassicCowPath) continue;
    instance.injection = Injection::kConeEscape;
    const FuzzOutcome outcome = run_instance(instance);
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.primary_failure(), "lemma1_cone_containment");
    // Injected instances skip the differential engines by design.
    EXPECT_TRUE(outcome.differentials.empty());
    break;
  }
}

TEST(Fuzz, ShrinkerReducesInjectedViolationToMinimalRepro) {
  for (std::uint64_t seed = 1;; ++seed) {
    FuzzInstance instance = generate_instance(seed);
    if (instance.kind == FleetKind::kClassicCowPath) continue;
    if (instance.n < 4) continue;  // start from a genuinely large case
    instance.injection = Injection::kConeEscape;

    const ShrinkResult shrunk = shrink_instance(instance);
    EXPECT_EQ(shrunk.failure, "lemma1_cone_containment");
    EXPECT_GT(shrunk.accepted_moves, 0);
    EXPECT_LE(shrunk.instance.n, 3);
    EXPECT_TRUE(shrunk.instance.targets.empty());

    const Fleet fleet = build_fuzz_fleet(shrunk.instance);
    EXPECT_LE(fleet.robot(0).segment_count(), 4u);
    const FuzzOutcome outcome = run_instance(shrunk.instance);
    EXPECT_EQ(outcome.primary_failure(), "lemma1_cone_containment");

    // Replaying the identical start must shrink to the identical minimum.
    const ShrinkResult again = shrink_instance(instance);
    EXPECT_TRUE(same_instance(shrunk.instance, again.instance));
    EXPECT_EQ(shrunk.accepted_moves, again.accepted_moves);
    break;
  }
}

TEST(Fuzz, JsonReproRecordNamesTheFailure) {
  FuzzInstance instance = generate_instance(7);
  instance.injection = Injection::kConeEscape;
  const FuzzOutcome outcome = run_instance(instance);
  const std::string json = instance_to_json(instance, outcome);
  EXPECT_NE(json.find("\"seed\": \"7\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"injection\": \"cone-escape\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("lemma1_cone_containment"), std::string::npos);
}

TEST(Fuzz, JsonCleanRecordIsOk) {
  const FuzzInstance instance = generate_instance(42);
  const FuzzOutcome outcome = run_instance(instance);
  const std::string json = instance_to_json(instance, outcome);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"failures\": []"), std::string::npos) << json;
}

TEST(Fuzz, CrashKindInstancesCarryACrashSchedule) {
  int crash_seeds = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    const FuzzInstance instance = generate_instance(seed);
    if (instance.kind != FleetKind::kCrashInjected) continue;
    ++crash_seeds;
    EXPECT_EQ(instance.crash_times.size(),
              static_cast<std::size_t>(instance.n))
        << seed;
    for (const Real t : instance.crash_times) {
      EXPECT_TRUE(std::isinf(t) || (t >= 0.1L && t <= 32.0L)) << seed;
    }
    const Fleet fleet = build_fuzz_fleet(instance);
    EXPECT_EQ(static_cast<int>(fleet.size()), instance.n) << seed;
  }
  EXPECT_GT(crash_seeds, 0);
}

TEST(Fuzz, CrashKindRunsTheCrashDifferential) {
  // The crash kind swaps the generic differential engines (which demand
  // finite detection everywhere) for the injected-vs-analytic race, and
  // sits out the Theorem 2 adversary game.
  for (std::uint64_t seed = 1;; ++seed) {
    const FuzzInstance instance = generate_instance(seed);
    if (instance.kind != FleetKind::kCrashInjected) continue;
    const FuzzOutcome outcome = run_instance(instance);
    EXPECT_TRUE(outcome.ok()) << outcome.describe();
    EXPECT_EQ(outcome.invariants.size(), 11u);
    ASSERT_EQ(outcome.differentials.size(), 1u);
    EXPECT_EQ(outcome.differentials[0].name, "crash_injected");
    break;
  }
}

TEST(Fuzz, CrashKindJsonRecordsTheSchedule) {
  for (std::uint64_t seed = 1;; ++seed) {
    const FuzzInstance instance = generate_instance(seed);
    if (instance.kind != FleetKind::kCrashInjected) continue;
    const FuzzOutcome outcome = run_instance(instance);
    const std::string json = instance_to_json(instance, outcome);
    EXPECT_NE(json.find("\"kind\": \"crash-injected\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"crash_times\""), std::string::npos) << json;
    break;
  }
}

TEST(Fuzz, KernelKindCarriesDuplicateTargets) {
  // The kernel-soa kind exists to stress exact-duplicate handling: its
  // target list repeats its leading entries bit-for-bit, and the
  // instance still passes every oracle and differential (including
  // scalar_vs_simd).
  int kernel_seeds = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    const FuzzInstance instance = generate_instance(seed);
    if (instance.kind != FleetKind::kKernelSoA) continue;
    ++kernel_seeds;
    ASSERT_GE(instance.targets.size(), 8u) << seed;
    bool any_duplicate = false;
    for (std::size_t i = 0; i < instance.targets.size(); ++i) {
      for (std::size_t j = i + 1; j < instance.targets.size(); ++j) {
        if (value_identical(instance.targets[i], instance.targets[j])) {
          any_duplicate = true;
        }
      }
    }
    EXPECT_TRUE(any_duplicate) << seed;
    if (kernel_seeds == 1) {
      const FuzzOutcome outcome = run_instance(instance);
      EXPECT_TRUE(outcome.ok()) << outcome.describe();
      bool ran_scalar_vs_simd = false;
      for (const DifferentialResult& result : outcome.differentials) {
        if (result.name == "scalar_vs_simd") ran_scalar_vs_simd = true;
      }
      EXPECT_TRUE(ran_scalar_vs_simd);
    }
  }
  EXPECT_GT(kernel_seeds, 0);
}

TEST(Fuzz, ByzantineKindCarriesALiePlanAndRunsItsDifferential) {
  // Byzantine-lies instances carry a per-robot lie schedule sized to the
  // fleet with at most f liars, lies never alter motion (the fleet is
  // the plain A(n, f)), and the run swaps the generic engines for the
  // runtime-vs-analytic quorum race.
  int byzantine_seeds = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    const FuzzInstance instance = generate_instance(seed);
    if (instance.kind != FleetKind::kByzantineLies) continue;
    ++byzantine_seeds;
    EXPECT_EQ(instance.lies.size(), static_cast<std::size_t>(instance.n))
        << seed;
    EXPECT_GE(instance.lies.liar_count(), 1) << seed;
    EXPECT_LE(instance.lies.liar_count(), instance.f) << seed;
    for (std::size_t robot = 0; robot < instance.lies.size(); ++robot) {
      if (!instance.lies.liar[robot]) {
        EXPECT_TRUE(instance.lies.claims[robot].empty()) << seed;
      }
      for (const LieEvent& event : instance.lies.claims[robot]) {
        EXPECT_GT(event.time, 0) << seed;
        EXPECT_GE(std::fabs(event.position), 1) << seed;
      }
    }
    const Fleet fleet = build_fuzz_fleet(instance);
    EXPECT_EQ(static_cast<int>(fleet.size()), instance.n) << seed;
    if (byzantine_seeds == 1) {
      // Lies never alter motion, so the full generic engine set still
      // applies — the quorum race rides along as an extra engine.
      const FuzzOutcome outcome = run_instance(instance);
      EXPECT_TRUE(outcome.ok()) << outcome.describe();
      EXPECT_EQ(outcome.invariants.size(), 11u);
      bool ran_byzantine = false;
      for (const DifferentialResult& result : outcome.differentials) {
        if (result.name == "byzantine") ran_byzantine = true;
      }
      EXPECT_TRUE(ran_byzantine);
    }
  }
  EXPECT_GT(byzantine_seeds, 0);
}

TEST(Fuzz, ByzantineKindJsonRecordsTheLieSchedule) {
  for (std::uint64_t seed = 1;; ++seed) {
    const FuzzInstance instance = generate_instance(seed);
    if (instance.kind != FleetKind::kByzantineLies) continue;
    const FuzzOutcome outcome = run_instance(instance);
    const std::string json = instance_to_json(instance, outcome);
    EXPECT_NE(json.find("\"kind\": \"byzantine-lies\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"liars\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"lie_claims\""), std::string::npos) << json;
    break;
  }
}

TEST(Fuzz, ShrinkerReducesByzantineInstanceToAtMostThreeRobots) {
  // A corrupted byzantine-lies instance must shrink to a <= 3-robot
  // lie-schedule repro whose JSON still carries the schedule — the
  // repro an actual arbitration bug would be reported as.
  for (std::uint64_t seed = 1;; ++seed) {
    FuzzInstance instance = generate_instance(seed);
    if (instance.kind != FleetKind::kByzantineLies) continue;
    if (instance.n < 4) continue;  // start from a genuinely large case
    instance.injection = Injection::kConeEscape;

    const ShrinkResult shrunk = shrink_instance(instance);
    EXPECT_EQ(shrunk.failure, "lemma1_cone_containment");
    EXPECT_GT(shrunk.accepted_moves, 0);
    EXPECT_LE(shrunk.instance.n, 3);
    EXPECT_EQ(shrunk.instance.kind, FleetKind::kByzantineLies);
    // The lie plan is clamped alongside the fleet.
    EXPECT_EQ(shrunk.instance.lies.size(),
              static_cast<std::size_t>(shrunk.instance.n));
    EXPECT_LE(shrunk.instance.lies.liar_count(), shrunk.instance.f);

    const std::string json = instance_to_json(
        shrunk.instance, run_instance(shrunk.instance));
    EXPECT_NE(json.find("\"liars\""), std::string::npos) << json;

    // Replaying the identical start must shrink to the identical
    // minimum.
    const ShrinkResult again = shrink_instance(instance);
    EXPECT_TRUE(same_instance(shrunk.instance, again.instance));
    EXPECT_EQ(shrunk.accepted_moves, again.accepted_moves);
    break;
  }
}

TEST(Fuzz, ServerQueryKindCoversEveryRegimeAndRunsTheWireDifferential) {
  // Server-query instances swap the generic engine set for the wire
  // round trip (diff_server_vs_library); crash-regime queries carry a
  // full per-robot schedule, and across the 120-seed corpus all three
  // fault regimes must appear.
  std::set<svc::FaultRegime> regimes;
  int server_seeds = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    const FuzzInstance instance = generate_instance(seed);
    if (instance.kind != FleetKind::kServerQuery) continue;
    ++server_seeds;
    regimes.insert(instance.query_regime);
    if (instance.query_regime == svc::FaultRegime::kCrash) {
      EXPECT_EQ(instance.crash_times.size(),
                static_cast<std::size_t>(instance.n))
          << seed;
    } else {
      EXPECT_TRUE(instance.crash_times.empty()) << seed;
    }
    if (server_seeds == 1) {
      const FuzzOutcome outcome = run_instance(instance);
      EXPECT_TRUE(outcome.ok()) << outcome.describe();
      EXPECT_EQ(outcome.invariants.size(), 11u);
      ASSERT_EQ(outcome.differentials.size(), 1u);
      EXPECT_EQ(outcome.differentials[0].name, "server_vs_library");
    }
  }
  EXPECT_GT(server_seeds, 0);
  EXPECT_EQ(regimes.size(), 3u);
}

TEST(Fuzz, ServerQueryKindJsonRecordsTheRegime) {
  for (std::uint64_t seed = 1;; ++seed) {
    const FuzzInstance instance = generate_instance(seed);
    if (instance.kind != FleetKind::kServerQuery) continue;
    const FuzzOutcome outcome = run_instance(instance);
    const std::string json = instance_to_json(instance, outcome);
    EXPECT_NE(json.find("\"kind\": \"server-query\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"query_regime\""), std::string::npos) << json;
    break;
  }
}

TEST(Fuzz, ProbabilisticKindRunsTheExpectationDifferential) {
  // Probabilistic-faults instances carry a fault_p in [0, 1) — mostly
  // inside the convergent band, occasionally past the ladder threshold
  // so the divergence contract is exercised — and ride the generic
  // engine set plus the expectation-vs-Monte-Carlo race.
  int probabilistic_seeds = 0;
  int divergent_seeds = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    const FuzzInstance instance = generate_instance(seed);
    if (instance.kind != FleetKind::kProbabilisticFaults) continue;
    ++probabilistic_seeds;
    EXPECT_GE(instance.fault_p, 0.0L) << seed;
    EXPECT_LT(instance.fault_p, 1.0L) << seed;
    if (!expectation_converges(instance.n, instance.f, instance.fault_p)) {
      ++divergent_seeds;
    }
    if (probabilistic_seeds == 1) {
      const FuzzOutcome outcome = run_instance(instance);
      EXPECT_TRUE(outcome.ok()) << outcome.describe();
      EXPECT_EQ(outcome.invariants.size(), 11u);
      bool ran_expectation = false;
      for (const DifferentialResult& result : outcome.differentials) {
        if (result.name == "expectation_vs_montecarlo") {
          ran_expectation = true;
        }
      }
      EXPECT_TRUE(ran_expectation);
    }
  }
  EXPECT_GT(probabilistic_seeds, 0);
  EXPECT_GT(divergent_seeds, 0);
}

TEST(Fuzz, ProbabilisticKindJsonRecordsFaultP) {
  for (std::uint64_t seed = 1;; ++seed) {
    const FuzzInstance instance = generate_instance(seed);
    if (instance.kind != FleetKind::kProbabilisticFaults) continue;
    const FuzzOutcome outcome = run_instance(instance);
    const std::string json = instance_to_json(instance, outcome);
    EXPECT_NE(json.find("\"kind\": \"probabilistic-faults\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"fault_p\""), std::string::npos) << json;
    break;
  }
}

TEST(Fuzz, ShrinkRequiresAFailingStart) {
  const FuzzInstance instance = generate_instance(42);
  EXPECT_THROW((void)shrink_instance(instance), PreconditionError);
}

}  // namespace
}  // namespace verify
}  // namespace linesearch

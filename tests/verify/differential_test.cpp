// Differential layer: independent evaluator paths must agree.
#include "verify/differential.hpp"

#include <gtest/gtest.h>

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "eval/batch.hpp"

namespace linesearch {
namespace verify {
namespace {

CrEvalOptions window16() {
  CrEvalOptions eval;
  eval.window_lo = 1;
  eval.window_hi = 16;
  return eval;
}

TEST(Differential, ProportionalFleetAllEnginesAgree) {
  const Fleet fleet = ProportionalAlgorithm(5, 2).build_fleet(64);
  const std::vector<DifferentialResult> results =
      run_differentials(fleet, 2, window16());
  EXPECT_EQ(results.size(), 6u);
  EXPECT_TRUE(all_ok(results)) << describe_failures(results);
  EXPECT_TRUE(describe_failures(results).empty());
}

TEST(Differential, NonConeFleetAllEnginesAgree) {
  const Fleet fleet = ClassicCowPath(3, 1, /*mirrored=*/true).build_fleet(64);
  const std::vector<DifferentialResult> results =
      run_differentials(fleet, 1, window16());
  EXPECT_TRUE(all_ok(results)) << describe_failures(results);
}

TEST(Differential, BatchThreadsBitIdenticalAcrossManyCounts) {
  const Fleet fleet = ProportionalAlgorithm(7, 3).build_fleet(64);
  std::vector<CrBatchJob> jobs;
  for (int g = 0; g < 7; ++g) jobs.push_back({&fleet, g, window16()});
  DifferentialOptions options;
  options.thread_counts = {1, 2, 3, 8, 16};
  const DifferentialResult result = diff_batch_threads(jobs, options);
  EXPECT_TRUE(result.ok()) << result.message;
  EXPECT_TRUE(result.mismatches.empty());
}

TEST(Differential, CacheOnOffBitIdentical) {
  const Fleet fleet = GroupDoubling(4, 2).build_fleet(64);
  std::vector<CrBatchJob> jobs;
  for (int g = 0; g < 4; ++g) jobs.push_back({&fleet, g, window16()});
  EXPECT_TRUE(diff_cache_on_off(jobs).ok());
  EXPECT_TRUE(diff_cache_on_off(jobs, /*threads=*/1).ok());
}

TEST(Differential, CacheDirectMatchesFleetQueries) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_fleet(64);
  const std::vector<Real> positions = {1, -1, 2.5L, -7.25L, 16, -16,
                                       3.0000000001L};
  const DifferentialResult result = diff_cache_direct(fleet, 1, positions);
  EXPECT_TRUE(result.ok()) << result.message;
}

TEST(Differential, CacheDirectInapplicableWithoutPositions) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_fleet(64);
  const DifferentialResult result = diff_cache_direct(fleet, 1, {});
  EXPECT_FALSE(result.applicable);
  EXPECT_TRUE(result.ok());
}

TEST(Differential, ProbeVsExactWithinDesignedGap) {
  const Fleet fleet = ProportionalAlgorithm(5, 2).build_fleet(64);
  const DifferentialResult result = diff_probe_vs_exact(fleet, 2, window16());
  EXPECT_TRUE(result.ok()) << result.message;
}

TEST(Differential, ImpossibleToleranceProducesStructuredMismatch) {
  // Forcing probe_gap_tol to zero makes the designed 1e-9 probe offset a
  // "failure" — which is exactly how the mismatch report is exercised.
  const Fleet fleet = ProportionalAlgorithm(5, 2).build_fleet(64);
  DifferentialOptions options;
  options.probe_gap_tol = 0;
  const DifferentialResult result =
      diff_probe_vs_exact(fleet, 2, window16(), options);
  ASSERT_FALSE(result.ok());
  ASSERT_FALSE(result.mismatches.empty());
  EXPECT_EQ(result.mismatches.front().field, "cr(gap)");
  EXPECT_FALSE(result.message.empty());
  EXPECT_FALSE(describe_failures({result}).empty());
}

TEST(Differential, ScalarVsSimdBitIdenticalOnDenseFleet) {
  const Fleet fleet = ProportionalAlgorithm(5, 2).build_fleet(64);
  const DifferentialResult result = diff_scalar_vs_simd(fleet, 2, window16());
  EXPECT_EQ(result.name, "scalar_vs_simd");
  EXPECT_TRUE(result.ok()) << result.message;
  EXPECT_TRUE(result.mismatches.empty());
}

TEST(Differential, ScalarVsSimdBitIdenticalOnAnalyticFleet) {
  // The batched frontier sweep has a dedicated closed-form path on the
  // unbounded backend; it must be as indistinguishable as the dense one.
  const Fleet fleet = ProportionalAlgorithm(5, 2).build_unbounded_fleet();
  const DifferentialResult result = diff_scalar_vs_simd(fleet, 2, window16());
  EXPECT_TRUE(result.ok()) << result.message;
}

TEST(Differential, ScalarVsSimdAgreesOnUndetectedProbes) {
  // An under-built fleet leaves probes undetected; the engine relaxes
  // require_finite and both paths must report the identical undetected
  // count instead of throwing.
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_fleet(4);
  CrEvalOptions eval = window16();
  eval.window_hi = 4096;  // far beyond the fleet's reach
  eval.require_finite = false;
  const DifferentialResult result = diff_scalar_vs_simd(fleet, 1, eval);
  EXPECT_TRUE(result.ok()) << result.message;
}

TEST(Differential, GridSamplesNeverExceedCertifiedSup) {
  const Fleet fleet = ProportionalAlgorithm(4, 2).build_fleet(64);
  DifferentialOptions options;
  options.grid_points = 96;
  const DifferentialResult result =
      diff_exact_vs_grid(fleet, 2, window16(), options);
  EXPECT_TRUE(result.ok()) << result.message;
}

}  // namespace
}  // namespace verify
}  // namespace linesearch

// Invariant-oracle layer: the paper's lemmas as machine predicates.
#include "verify/invariants.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "sim/trajectory.hpp"

namespace linesearch {
namespace verify {
namespace {

InvariantOptions small_window() {
  InvariantOptions options;
  options.window_lo = 1;
  options.window_hi = 16;
  options.samples = 16;
  return options;
}

const InvariantResult& find_result(const std::vector<InvariantResult>& results,
                                   const std::string& name) {
  static const InvariantResult missing{"<missing>", false, false, "", 0};
  const auto it =
      std::find_if(results.begin(), results.end(),
                   [&name](const InvariantResult& r) { return r.name == name; });
  if (it == results.end()) {
    ADD_FAILURE() << "missing oracle " << name;
    return missing;
  }
  return *it;
}

TEST(Invariants, ProportionalAlgorithmPassesEveryOracle) {
  const ProportionalAlgorithm algo(5, 2);
  const Fleet fleet = algo.build_fleet(64);
  Subject subject;
  subject.fleet = &fleet;
  subject.f = 2;
  subject.beta = algo.beta();
  subject.proportional = true;
  subject.theory_cr = algorithm_cr(5, 2);
  subject.coverage_extent = 64;

  const std::vector<InvariantResult> results =
      run_invariants(subject, small_window());
  EXPECT_TRUE(all_ok(results)) << describe_failures(results);

  // Every claim the subject makes must actually have been checked —
  // an oracle that silently reports inapplicable would hide bugs.
  for (const char* name :
       {"kinematics", "lemma1_cone_containment",
        "lemma2_proportional_structure", "first_visit_monotonicity",
        "detection_order_statistics", "coverage", "theorem1_closed_form",
        "theorem2_lower_bound_dominance", "fault_monotone_cr",
        "probabilistic_monotone"}) {
    EXPECT_TRUE(find_result(results, name).applicable)
        << name << " was not applicable";
  }
}

TEST(Invariants, NonConeStrategyLimitsApplicability) {
  const ClassicCowPath strategy(3, 1);
  const Fleet fleet = strategy.build_fleet(64);
  Subject subject;
  subject.fleet = &fleet;
  subject.f = 1;
  subject.coverage_extent = 64;

  const std::vector<InvariantResult> results =
      run_invariants(subject, small_window());
  EXPECT_TRUE(all_ok(results)) << describe_failures(results);
  EXPECT_FALSE(find_result(results, "lemma1_cone_containment").applicable);
  EXPECT_FALSE(
      find_result(results, "lemma2_proportional_structure").applicable);
  EXPECT_FALSE(find_result(results, "theorem1_closed_form").applicable);
  // n = 3 < 2f+2 = 4: the lower-bound game still applies.
  EXPECT_TRUE(
      find_result(results, "theorem2_lower_bound_dominance").applicable);
}

TEST(Invariants, TrivialRegimeSkipsLowerBoundGame) {
  const TwoGroupSplit strategy(4, 1);
  const Fleet fleet = strategy.build_fleet(64);
  Subject subject;
  subject.fleet = &fleet;
  subject.f = 1;
  subject.coverage_extent = 64;

  const std::vector<InvariantResult> results =
      run_invariants(subject, small_window());
  EXPECT_TRUE(all_ok(results)) << describe_failures(results);
  EXPECT_FALSE(
      find_result(results, "theorem2_lower_bound_dominance").applicable);
}

TEST(Invariants, ConeEscapeIsCaught) {
  // A unit-speed doubling zig-zag straight from the origin reaches
  // (1, 1), strictly below the beta = 3 cone boundary t = 3|x|.
  TrajectoryBuilder builder;
  builder.start_at(0, 0);
  for (const Real turn : {1.0L, -2.0L, 4.0L, -8.0L, 16.0L, -32.0L, 64.0L,
                          -64.0L}) {
    builder.move_to(turn);
  }
  const Fleet fleet(std::vector<Trajectory>{std::move(builder).build()});
  Subject subject;
  subject.fleet = &fleet;
  subject.f = 0;
  subject.beta = 3;
  subject.coverage_extent = 16;

  const std::vector<InvariantResult> results =
      run_invariants(subject, small_window());
  const InvariantResult& cone =
      find_result(results, "lemma1_cone_containment");
  EXPECT_TRUE(cone.applicable);
  EXPECT_FALSE(cone.passed);
  EXPECT_GT(cone.worst, 0);
  EXPECT_FALSE(all_ok(results));
  EXPECT_NE(describe_failures(results).find("lemma1_cone_containment"),
            std::string::npos);
}

TEST(Invariants, WrongClosedFormClaimIsCaught) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(64);
  Subject subject;
  subject.fleet = &fleet;
  subject.f = 1;
  subject.beta = algo.beta();
  subject.proportional = true;
  subject.theory_cr = algorithm_cr(3, 1) * Real{0.5L};  // absurdly low
  subject.window_is_tight = true;
  subject.coverage_extent = 64;

  const std::vector<InvariantResult> results =
      run_invariants(subject, small_window());
  const InvariantResult& theorem1 =
      find_result(results, "theorem1_closed_form");
  EXPECT_TRUE(theorem1.applicable);
  EXPECT_FALSE(theorem1.passed);
}

TEST(Invariants, ValueIdenticalSemantics) {
  EXPECT_TRUE(value_identical(kNaN, kNaN));
  EXPECT_TRUE(value_identical(kInfinity, kInfinity));
  EXPECT_FALSE(value_identical(kInfinity, -kInfinity));
  EXPECT_FALSE(value_identical(Real{0}, -Real{0}));
  EXPECT_TRUE(value_identical(Real{1.5L}, Real{1.5L}));
  EXPECT_FALSE(value_identical(Real{1.5L}, kNaN));
}

// Acceptance bar: Theorem 1's closed form agrees with the certified
// (simulated) CR within 1e-9 for EVERY pair in the proportional regime
// up to n = 12 — the window [1, 64] of an extent-2048 fleet is deep in
// steady state, so agreement is demanded two-sided.
TEST(Invariants, Theorem1AgreesWithinTolerance_AllPairsUpTo12) {
  InvariantOptions options;
  options.window_lo = 1;
  options.window_hi = 64;
  options.samples = 8;
  options.rel_tol = 1e-9L;
  options.run_theorem2_game = false;  // covered elsewhere; keep this fast

  int pairs = 0;
  for (int n = 2; n <= 12; ++n) {
    for (int f = 1; f < n; ++f) {
      if (!in_proportional_regime(n, f)) continue;
      const ProportionalAlgorithm algo(n, f);
      const Fleet fleet = algo.build_fleet(2048);
      Subject subject;
      subject.fleet = &fleet;
      subject.f = f;
      subject.beta = algo.beta();
      subject.proportional = true;
      subject.theory_cr = algorithm_cr(n, f);
      subject.window_is_tight = true;
      subject.coverage_extent = 2048;

      const InvariantResult result =
          check_theorem1_agreement(subject, options);
      EXPECT_TRUE(result.applicable) << "n=" << n << " f=" << f;
      EXPECT_TRUE(result.passed)
          << "n=" << n << " f=" << f << ": " << result.message;
      ++pairs;
    }
  }
  EXPECT_EQ(pairs, 41);
}

TEST(Invariants, ClosedFormDominatesLowerBoundEverywhere) {
  for (int n = 2; n <= 12; ++n) {
    for (int f = 1; f < n; ++f) {
      if (!in_proportional_regime(n, f)) continue;
      EXPECT_GE(algorithm_cr(n, f),
                best_lower_bound(n, f) * (1 - tol::kRelative))
          << "n=" << n << " f=" << f;
    }
  }
}

}  // namespace
}  // namespace verify
}  // namespace linesearch

// Fixed-seed fuzz corpus — the ctest face of tools/fuzz_main.
//
// 100+ deterministic instances spanning every strategy family run every
// invariant oracle and every differential engine (serial vs 2 vs 8
// threads bit-identical among them).  The corpus is pinned: seeds
// [1, 120] never change, so a failure here is a regression, not flake,
// and `tools/fuzz_main --seed S` replays it exactly.  The CI sanitizer
// matrix (ASan/UBSan) selects this binary via `ctest -L fuzz`.
#include <gtest/gtest.h>

#include "verify/fuzz.hpp"

namespace linesearch {
namespace verify {
namespace {

constexpr std::uint64_t kFirstSeed = 1;
constexpr int kCorpusSize = 120;

TEST(FuzzCorpus, AllFixedSeedsPassEveryOracle) {
  const CorpusReport report = run_corpus(kFirstSeed, kCorpusSize);
  EXPECT_EQ(report.total, kCorpusSize);
  if (report.failed != 0) {
    std::string seeds;
    for (const std::uint64_t seed : report.failing_seeds) {
      seeds += ' ' + std::to_string(seed);
    }
    FAIL() << report.failed << " corpus seeds failed:" << seeds
           << "\nreplay with: tools/fuzz_main --seed <S>";
  }
}

TEST(FuzzCorpus, InjectedCorpusAlwaysFailsAndShrinks) {
  // Every cone-claiming seed in a small injected corpus must (a) fail
  // the cone oracle and (b) shrink to the documented minimal shape.
  int injected = 0;
  for (std::uint64_t seed = kFirstSeed; injected < 10; ++seed) {
    FuzzInstance instance = generate_instance(seed);
    if (instance.kind == FleetKind::kClassicCowPath) continue;
    instance.injection = Injection::kConeEscape;
    const FuzzOutcome outcome = run_instance(instance);
    ASSERT_FALSE(outcome.ok()) << "seed " << seed;
    EXPECT_EQ(outcome.primary_failure(), "lemma1_cone_containment")
        << "seed " << seed;

    const ShrinkResult shrunk = shrink_instance(instance);
    EXPECT_LE(shrunk.instance.n, 3) << "seed " << seed;
    const Fleet fleet = build_fuzz_fleet(shrunk.instance);
    EXPECT_LE(fleet.robot(0).segment_count(), 4u) << "seed " << seed;
    ++injected;
  }
}

}  // namespace
}  // namespace verify
}  // namespace linesearch

// Tests for eval/montecarlo.hpp — the random-fault extension study.
#include "eval/montecarlo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "eval/expectation.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

Fleet a31_fleet() { return ProportionalAlgorithm(3, 1).build_fleet(800); }

TEST(MonteCarlo, SamplesBoundedByAdversarialCr) {
  const Fleet fleet = a31_fleet();
  MonteCarloOptions options;
  options.trials = 400;
  options.target_hi = 32;
  const MonteCarloResult result = random_fault_study(fleet, 1, options);
  EXPECT_EQ(result.ratio.count, 400u);
  EXPECT_LE(result.worst_sample, result.adversarial_cr * (1 + 1e-9L));
  EXPECT_GE(result.ratio.min, 1.0L);  // cannot beat distance/speed
}

TEST(MonteCarlo, MeanBelowWorstCase) {
  const Fleet fleet = a31_fleet();
  MonteCarloOptions options;
  options.trials = 400;
  options.target_hi = 32;
  const MonteCarloResult result = random_fault_study(fleet, 1, options);
  EXPECT_LT(result.ratio.mean, result.adversarial_cr);
  EXPECT_LE(result.median, result.p95);
  EXPECT_LE(result.p95, result.worst_sample + 1e-12L);
}

TEST(MonteCarlo, DeterministicForFixedSeed) {
  const Fleet fleet = a31_fleet();
  MonteCarloOptions options;
  options.trials = 100;
  options.target_hi = 16;
  const MonteCarloResult a = random_fault_study(fleet, 1, options);
  const MonteCarloResult b = random_fault_study(fleet, 1, options);
  EXPECT_EQ(a.ratio.mean, b.ratio.mean);
  EXPECT_EQ(a.worst_sample, b.worst_sample);
}

TEST(MonteCarlo, DifferentSeedsDiffer) {
  const Fleet fleet = a31_fleet();
  MonteCarloOptions a_options;
  a_options.trials = 100;
  a_options.target_hi = 16;
  MonteCarloOptions b_options = a_options;
  b_options.seed = 999;
  const MonteCarloResult a = random_fault_study(fleet, 1, a_options);
  const MonteCarloResult b = random_fault_study(fleet, 1, b_options);
  EXPECT_NE(a.ratio.mean, b.ratio.mean);
}

TEST(MonteCarlo, ZeroFaultsMatchesFaultFreeSearch) {
  // With f = 0 the "random" fault set is empty; every ratio equals the
  // fault-free detection ratio, which for A(3,1) lies in [1, CR].
  const Fleet fleet = a31_fleet();
  MonteCarloOptions options;
  options.trials = 50;
  options.target_hi = 16;
  const MonteCarloResult result = random_fault_study(fleet, 0, options);
  EXPECT_GE(result.ratio.min, 1.0L);
  EXPECT_LE(result.worst_sample, result.adversarial_cr * (1 + 1e-9L));
}

TEST(MonteCarlo, GroupDoublingIsFaultOblivious) {
  // Identical trajectories: random faults never change the ratio, so the
  // sample spread collapses to the fault-free profile.
  const GroupDoubling pack(3, 2);
  const Fleet fleet = pack.build_fleet(500);
  MonteCarloOptions options;
  options.trials = 200;
  options.target_hi = 16;
  const MonteCarloResult with_faults = random_fault_study(fleet, 2, options);
  const MonteCarloResult without = random_fault_study(fleet, 0, options);
  EXPECT_NEAR(static_cast<double>(with_faults.ratio.mean),
              static_cast<double>(without.ratio.mean), 1e-12);
}

TEST(MonteCarlo, GuardsArguments) {
  const Fleet fleet = a31_fleet();
  MonteCarloOptions bad_trials;
  bad_trials.trials = 0;
  EXPECT_THROW((void)random_fault_study(fleet, 1, bad_trials),
               PreconditionError);
  MonteCarloOptions bad_window;
  bad_window.target_hi = 0.5L;
  EXPECT_THROW((void)random_fault_study(fleet, 1, bad_window),
               PreconditionError);
  EXPECT_THROW((void)random_fault_study(fleet, 3), PreconditionError);
}

TEST(MonteCarlo, SeededStudyPinsPortableSplitMix64Values) {
  // Regression for the seeding port: random_fault_study used to draw
  // through std::mt19937_64 + std::uniform_real_distribution /
  // std::bernoulli_distribution, whose streams are implementation-
  // defined — the same seed produced DIFFERENT studies on different
  // standard libraries, and none of them matched these values.  With
  // every draw on util/rng's SplitMix64 the exact decimal expansions
  // below hold on every platform; a drift in the generator, the draw
  // order, or the codec shows up here first.
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_fleet(2048);
  MonteCarloOptions options;
  options.trials = 8;
  options.seed = 7;
  const MonteCarloResult result = random_fault_study(fleet, 1, options);
  EXPECT_EQ(encode_real_field(result.ratio.mean, 21),
            "2.5941404365989497588");
  EXPECT_EQ(encode_real_field(result.worst_sample, 21),
            "5.09459131567167348292");
  EXPECT_EQ(encode_real_field(result.median, 21),
            "2.06739148981758112645");
}

TEST(ProbabilisticMc, PZeroRealizesTheFaultFreeDetectionExactly) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_unbounded_fleet();
  ProbabilisticMcOptions options;
  options.p = 0;
  options.trials = 16;
  const ProbabilisticMcResult result =
      mc_expected_detection_time(fleet, 2.5L, options);
  EXPECT_EQ(result.trials, 16);
  EXPECT_EQ(result.undetected, 0);
  // Every trial realizes exactly the fault-free first visit; the
  // aggregate passes through summarize(), whose accumulation may round
  // the last bit, so agreement is demanded to a few ulps, not bitwise.
  const Real exact = fleet.detection_time(2.5L, 0);
  EXPECT_NEAR(static_cast<double>(result.mean / exact), 1.0, 1e-15);
  EXPECT_LT(result.stddev, 1e-12L);
}

TEST(ProbabilisticMc, SeededRunsReplayAndTrackTheExactEngine) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_unbounded_fleet();
  ProbabilisticMcOptions options;
  options.p = 0.3L;
  options.trials = 2000;
  const ProbabilisticMcResult a =
      mc_expected_detection_time(fleet, 2.5L, options);
  const ProbabilisticMcResult b =
      mc_expected_detection_time(fleet, 2.5L, options);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.undetected, 0);  // p^4096 per robot is far below Real range
  ExpectationOptions exact;
  exact.p = 0.3L;
  const Real expected = expected_detection_time(fleet, 2.5L, exact);
  // 6 sigma of the sample mean — the same CLT band the differential
  // engine enforces across the whole grid.
  const Real band = 6 * a.stddev / std::sqrt(Real{2000});
  EXPECT_NEAR(static_cast<double>(a.mean), static_cast<double>(expected),
              static_cast<double>(band));
}

TEST(ProbabilisticMc, GuardsArguments) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_unbounded_fleet();
  ProbabilisticMcOptions bad_p;
  bad_p.p = 1;  // p = 1 never detects: the MC estimate is undefined
  EXPECT_THROW((void)mc_expected_detection_time(fleet, 1, bad_p),
               PreconditionError);
  ProbabilisticMcOptions bad_trials;
  bad_trials.trials = 0;
  EXPECT_THROW((void)mc_expected_detection_time(fleet, 1, bad_trials),
               PreconditionError);
  EXPECT_THROW((void)mc_expected_detection_time(fleet, 0, {}),
               PreconditionError);
}

}  // namespace
}  // namespace linesearch

// Tests for eval/montecarlo.hpp — the random-fault extension study.
#include "eval/montecarlo.hpp"

#include <gtest/gtest.h>

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

Fleet a31_fleet() { return ProportionalAlgorithm(3, 1).build_fleet(800); }

TEST(MonteCarlo, SamplesBoundedByAdversarialCr) {
  const Fleet fleet = a31_fleet();
  MonteCarloOptions options;
  options.trials = 400;
  options.target_hi = 32;
  const MonteCarloResult result = random_fault_study(fleet, 1, options);
  EXPECT_EQ(result.ratio.count, 400u);
  EXPECT_LE(result.worst_sample, result.adversarial_cr * (1 + 1e-9L));
  EXPECT_GE(result.ratio.min, 1.0L);  // cannot beat distance/speed
}

TEST(MonteCarlo, MeanBelowWorstCase) {
  const Fleet fleet = a31_fleet();
  MonteCarloOptions options;
  options.trials = 400;
  options.target_hi = 32;
  const MonteCarloResult result = random_fault_study(fleet, 1, options);
  EXPECT_LT(result.ratio.mean, result.adversarial_cr);
  EXPECT_LE(result.median, result.p95);
  EXPECT_LE(result.p95, result.worst_sample + 1e-12L);
}

TEST(MonteCarlo, DeterministicForFixedSeed) {
  const Fleet fleet = a31_fleet();
  MonteCarloOptions options;
  options.trials = 100;
  options.target_hi = 16;
  const MonteCarloResult a = random_fault_study(fleet, 1, options);
  const MonteCarloResult b = random_fault_study(fleet, 1, options);
  EXPECT_EQ(a.ratio.mean, b.ratio.mean);
  EXPECT_EQ(a.worst_sample, b.worst_sample);
}

TEST(MonteCarlo, DifferentSeedsDiffer) {
  const Fleet fleet = a31_fleet();
  MonteCarloOptions a_options;
  a_options.trials = 100;
  a_options.target_hi = 16;
  MonteCarloOptions b_options = a_options;
  b_options.seed = 999;
  const MonteCarloResult a = random_fault_study(fleet, 1, a_options);
  const MonteCarloResult b = random_fault_study(fleet, 1, b_options);
  EXPECT_NE(a.ratio.mean, b.ratio.mean);
}

TEST(MonteCarlo, ZeroFaultsMatchesFaultFreeSearch) {
  // With f = 0 the "random" fault set is empty; every ratio equals the
  // fault-free detection ratio, which for A(3,1) lies in [1, CR].
  const Fleet fleet = a31_fleet();
  MonteCarloOptions options;
  options.trials = 50;
  options.target_hi = 16;
  const MonteCarloResult result = random_fault_study(fleet, 0, options);
  EXPECT_GE(result.ratio.min, 1.0L);
  EXPECT_LE(result.worst_sample, result.adversarial_cr * (1 + 1e-9L));
}

TEST(MonteCarlo, GroupDoublingIsFaultOblivious) {
  // Identical trajectories: random faults never change the ratio, so the
  // sample spread collapses to the fault-free profile.
  const GroupDoubling pack(3, 2);
  const Fleet fleet = pack.build_fleet(500);
  MonteCarloOptions options;
  options.trials = 200;
  options.target_hi = 16;
  const MonteCarloResult with_faults = random_fault_study(fleet, 2, options);
  const MonteCarloResult without = random_fault_study(fleet, 0, options);
  EXPECT_NEAR(static_cast<double>(with_faults.ratio.mean),
              static_cast<double>(without.ratio.mean), 1e-12);
}

TEST(MonteCarlo, GuardsArguments) {
  const Fleet fleet = a31_fleet();
  MonteCarloOptions bad_trials;
  bad_trials.trials = 0;
  EXPECT_THROW((void)random_fault_study(fleet, 1, bad_trials),
               PreconditionError);
  MonteCarloOptions bad_window;
  bad_window.target_hi = 0.5L;
  EXPECT_THROW((void)random_fault_study(fleet, 1, bad_window),
               PreconditionError);
  EXPECT_THROW((void)random_fault_study(fleet, 3), PreconditionError);
}

}  // namespace
}  // namespace linesearch

// Tests for eval/turn_cost.hpp — the Demaine-Fekete-Gal turn-cost
// extension.
#include "eval/turn_cost.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

// 0 -> 2 -> -2 -> 3: turns at 2 (t=2) and -2 (t=6).
Trajectory two_turns() {
  TrajectoryBuilder b;
  b.start_at(0, 0);
  b.move_to(2).move_to(-2).move_to(3);
  return std::move(b).build();
}

TEST(TurnCostVisit, NoTurnsBeforeOutboundVisit) {
  // x = 1.5 is first visited on the way out, before any turn: no charge.
  EXPECT_EQ(turn_cost_first_visit(two_turns(), 1.5L, 10), 1.5L);
}

TEST(TurnCostVisit, EachTurnBeforeVisitCharges) {
  // x = -1 first visited at t = 5, after ONE turn (at 2).
  EXPECT_EQ(turn_cost_first_visit(two_turns(), -1, 10), 15.0L);
  // x = 2.5 first visited at t = 10.5, after TWO turns.
  EXPECT_EQ(turn_cost_first_visit(two_turns(), 2.5L, 10), 30.5L);
}

TEST(TurnCostVisit, ZeroCostMatchesPlainVisit) {
  const Trajectory t = two_turns();
  for (const Real x : {-1.9L, 0.0L, 1.0L, 2.9L}) {
    EXPECT_EQ(turn_cost_first_visit(t, x, 0), *t.first_visit_time(x));
  }
}

TEST(TurnCostVisit, UnreachedPointIsInfinity) {
  EXPECT_TRUE(std::isinf(turn_cost_first_visit(two_turns(), 5, 1)));
}

TEST(TurnCostVisit, VisitExactlyAtTurnNotCharged) {
  // The visit AT the turning point happens at the turn itself; only
  // turns strictly before the visit are charged.
  EXPECT_EQ(turn_cost_first_visit(two_turns(), 2, 5), 2.0L);
}

TEST(TurnCostVisit, NegativeCostRejected) {
  EXPECT_THROW((void)turn_cost_first_visit(two_turns(), 1, -1),
               PreconditionError);
}

TEST(TurnCostDetection, OrderStatisticOverEffectiveTimes) {
  // Robot A reaches x = -1 late but with no turns; robot B reaches it
  // early but after a turn.  Turn cost flips their order.
  const Fleet fleet({Trajectory({{0, 0}, {8, -8}}),          // visits -1 at 1? no: at t=1
                     two_turns()});                          // visits -1 at 5 (+c)
  // fleet.robot(0) visits -1 at t = 1 (sweeping left), robot(1) at 5+c.
  EXPECT_EQ(turn_cost_detection(fleet, -1, 0, 10), 1.0L);
  EXPECT_EQ(turn_cost_detection(fleet, -1, 1, 10), 15.0L);
  EXPECT_EQ(turn_cost_detection(fleet, -1, 1, 0), 5.0L);
}

TEST(TurnCostDetection, FaultBudgetBeyondFleetIsInfinity) {
  const Fleet fleet({two_turns()});
  EXPECT_TRUE(std::isinf(turn_cost_detection(fleet, 1, 1, 1)));
}

TEST(TurnCostCr, ZeroCostCoincidesWithMeasureCr) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(800);
  const CrEvalOptions options{.window_hi = 16};
  const CrEvalResult plain = measure_cr(fleet, 1, options);
  const CrEvalResult with_cost =
      measure_cr_with_turn_cost(fleet, 1, 0, options);
  // The probe sets are built independently, so agreement is limited by
  // the 1e-9 right-limit offset, not by exact probe identity.
  EXPECT_NEAR(static_cast<double>(with_cost.cr),
              static_cast<double>(plain.cr), 1e-7);
}

TEST(TurnCostCr, CostIncreasesTheRatioMonotonically) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(800);
  const CrEvalOptions options{.window_hi = 16};
  Real previous = 0;
  for (const Real c : {0.0L, 0.5L, 1.0L, 2.0L, 4.0L}) {
    const Real cr = measure_cr_with_turn_cost(fleet, 1, c, options).cr;
    EXPECT_GE(cr, previous - 1e-12L);
    previous = cr;
  }
  EXPECT_GT(previous, algorithm_cr(3, 1));  // cost 4 must visibly hurt
}

TEST(TurnCostCr, LargeCostFavorsSmallerBetaAwayFromTheOrigin) {
  // For targets near the minimum distance the detector has made the same
  // two prefix turns under any beta, so beta* stays optimal there.  On a
  // window away from the origin, however, accumulated turns matter and a
  // wider zig-zag (smaller beta, larger kappa, fewer turns per distance)
  // beats the paper's beta* once turning is expensive.
  const int n = 3, f = 1;
  const Real beta_star = optimal_beta(n, f);   // 5/3
  const Real beta_wide = 1.5L;
  CrEvalOptions options;
  options.window_lo = 50;
  options.window_hi = 200;
  const Real cost = 6;

  const Fleet at_star =
      ProportionalAlgorithm(n, f, beta_star).build_fleet(20000);
  const Fleet wide =
      ProportionalAlgorithm(n, f, beta_wide).build_fleet(20000);

  const Real cr_star =
      measure_cr_with_turn_cost(at_star, f, cost, options).cr;
  const Real cr_wide =
      measure_cr_with_turn_cost(wide, f, cost, options).cr;
  EXPECT_LT(cr_wide, cr_star)
      << "wide: " << static_cast<double>(cr_wide)
      << " star: " << static_cast<double>(cr_star);

  // Sanity: without turn cost the ordering is the paper's (beta* wins).
  const Real plain_star = measure_cr(at_star, f, options).cr;
  const Real plain_wide = measure_cr(wide, f, options).cr;
  EXPECT_LT(plain_star, plain_wide);
}

}  // namespace
}  // namespace linesearch

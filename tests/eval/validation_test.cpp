// Tests for eval/validation.hpp — experiment E1's machinery.
#include "eval/validation.hpp"

#include <gtest/gtest.h>

#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(ValidatePair, ProportionalRegimeAgreesWithTheorem1) {
  const ValidationRow row = validate_pair(3, 1, {.window_hi = 40});
  EXPECT_EQ(row.n, 3);
  EXPECT_EQ(row.f, 1);
  EXPECT_EQ(row.strategy, "A(3,1)");
  EXPECT_NEAR(static_cast<double>(row.theory_cr),
              static_cast<double>(algorithm_cr(3, 1)), 1e-12);
  EXPECT_LT(row.relative_gap, 1e-6L);
  EXPECT_NEAR(static_cast<double>(row.lower_bound),
              static_cast<double>(theorem2_alpha(3)), 1e-9);
}

TEST(ValidatePair, CertifiedColumnsAreMachinePrecision) {
  // The probe-free evaluator's gap must be orders below the probe
  // method's, and the certified value must dominate the probed one.
  const ValidationRow row = validate_pair(5, 2, {.window_hi = 24});
  EXPECT_LT(row.certified_gap, 1e-14L);
  EXPECT_LT(row.certified_gap, row.relative_gap);
  EXPECT_GE(row.certified_cr, row.measured_cr);
}

TEST(ValidatePair, TrivialRegimeCertifiedIsExactlyOne) {
  const ValidationRow row = validate_pair(6, 2, {.window_hi = 24});
  EXPECT_EQ(row.certified_cr, 1.0L);
  EXPECT_EQ(row.certified_gap, 0.0L);
}

TEST(ValidatePair, TrivialRegimeMeasuresOne) {
  const ValidationRow row = validate_pair(4, 1, {.window_hi = 40});
  EXPECT_EQ(row.theory_cr, 1.0L);
  EXPECT_NEAR(static_cast<double>(row.measured_cr), 1.0, 1e-9);
  EXPECT_EQ(row.lower_bound, 1.0L);
}

TEST(ValidatePair, MeasuredNeverExceedsTheory) {
  // The measured sup is a right-limit approached from below.
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {2, 1}, {3, 2}, {5, 2}}) {
    const ValidationRow row = validate_pair(n, f, {.window_hi = 30});
    EXPECT_LE(row.measured_cr, row.theory_cr * (1 + 1e-9L))
        << n << "," << f;
    EXPECT_GE(row.measured_cr, row.lower_bound * (1 - 1e-9L));
  }
}

TEST(ValidatePair, GuardsOptions) {
  EXPECT_THROW((void)validate_pair(3, 1, {.window_hi = 0.5L}),
               PreconditionError);
  ValidationOptions bad;
  bad.extent_factor = 1;
  EXPECT_THROW((void)validate_pair(3, 1, bad), PreconditionError);
}

TEST(ValidateGrid, OneRowPerPair) {
  const std::vector<ValidationRow> rows =
      validate_grid({{2, 1}, {3, 1}, {4, 1}}, {.window_hi = 20});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].n, 2);
  EXPECT_EQ(rows[2].strategy, "two-group split(4,1)");
}

TEST(RegimePairs, EnumeratesExactlyTheRegime) {
  const std::vector<std::pair<int, int>> pairs =
      proportional_regime_pairs(5);
  // n=2:f=1; n=3:f=1,2; n=4:f=2,3; n=5:f=2,3,4.
  EXPECT_EQ(pairs.size(), 8u);
  for (const auto& [n, f] : pairs) {
    EXPECT_TRUE(in_proportional_regime(n, f)) << n << "," << f;
    EXPECT_LE(n, 5);
  }
}

TEST(RegimePairs, GuardsNMax) {
  EXPECT_THROW((void)proportional_regime_pairs(1), PreconditionError);
}

}  // namespace
}  // namespace linesearch

// eval/expectation: the exact expected-CR engine under per-visit iid
// probe failures, its Monte-Carlo cross-check, the p-sweep grid, and the
// probabilistic query regime of the service layer.  The load-bearing
// contracts pinned here:
//
//   * p == 0 collapses BITWISE to the fault-free path — both per-target
//     (expected_detection_time vs Fleet::detection_time) and per-scan
//     (measure_expected_cr vs measure_cr, all 41 regime pairs);
//   * divergence is certified, not approximated: past the ladder
//     threshold kappa^(-1/n) the engine reports kInfinity and the codec
//     pins it as "inf" on every surface (CSV field, NDJSON wire);
//   * where the exact series converges, a seeded Monte-Carlo realization
//     of the same fault model agrees within CLT bounds — the
//     expectation_vs_montecarlo differential, run here over the full
//     regime grid at p in {0.1, 0.5, 0.9};
//   * the service answers probabilistic queries value-identically to the
//     direct path for every cache configuration and thread count.
#include "eval/expectation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "eval/cr_eval.hpp"
#include "eval/montecarlo.hpp"
#include "eval/validation.hpp"
#include "svc/query.hpp"
#include "svc/server.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "verify/differential.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace {

using svc::CrQuery;
using svc::FaultRegime;
using svc::QueryResult;
using svc::QueryService;
using svc::QueryServiceOptions;
using verify::value_identical;

/// The scan window every test in this file measures over.
CrEvalOptions small_eval() {
  return CrEvalOptions{.window_lo = 1,
                       .window_hi = 16,
                       .interior_samples = 2,
                       .require_finite = false};
}

ExpectationOptions expectation_at(const Real p) {
  ExpectationOptions options;
  options.p = p;
  options.eval = small_eval();
  return options;
}

/// Field-by-field value identity of two scan results.
void expect_scan_identical(const CrEvalResult& a, const CrEvalResult& b,
                           const std::string& context) {
  EXPECT_TRUE(value_identical(a.cr, b.cr)) << context;
  EXPECT_TRUE(value_identical(a.argmax, b.argmax)) << context;
  EXPECT_TRUE(value_identical(a.cr_positive, b.cr_positive)) << context;
  EXPECT_TRUE(value_identical(a.cr_negative, b.cr_negative)) << context;
  EXPECT_EQ(a.probes, b.probes) << context;
  EXPECT_EQ(a.undetected_probes, b.undetected_probes) << context;
}

// ---------------------------------------------------------------------------
// Convergence threshold
// ---------------------------------------------------------------------------

TEST(ExpectationThreshold, MatchesTheClosedForm) {
  for (const auto& [n, f] : {std::pair{3, 1}, {5, 2}, {12, 8}}) {
    const Real kappa = optimal_expansion_factor(n, f);
    const Real expected = std::pow(kappa, Real{-1} / n);
    EXPECT_NEAR(static_cast<double>(expectation_convergence_threshold(n, f)),
                static_cast<double>(expected), 1e-15)
        << "n=" << n << " f=" << f;
  }
}

TEST(ExpectationThreshold, EveryRegimePairSitsInsideTheUnitInterval) {
  Real minimum = 1;
  for (const auto& [n, f] : proportional_regime_pairs(12)) {
    const Real threshold = expectation_convergence_threshold(n, f);
    EXPECT_GT(threshold, 0) << "n=" << n << " f=" << f;
    EXPECT_LT(threshold, 1) << "n=" << n << " f=" << f;
    minimum = std::min(minimum, threshold);
  }
  // (3, 1) has the most aggressive ladder (kappa = 4) relative to its
  // team size, so it bounds the grid from below: every p < 0.63 is
  // convergent for EVERY regime pair — the invariant-oracle p grid and
  // the sweep defaults rely on that.
  EXPECT_TRUE(value_identical(minimum,
                              expectation_convergence_threshold(3, 1)));
  EXPECT_GT(minimum, 0.62L);
  EXPECT_LT(minimum, 0.64L);
}

TEST(ExpectationThreshold, ConvergencePredicateBracketsTheThreshold) {
  const Real threshold = expectation_convergence_threshold(3, 1);
  EXPECT_TRUE(expectation_converges(3, 1, 0));
  EXPECT_TRUE(expectation_converges(3, 1, threshold * 0.999L));
  EXPECT_FALSE(expectation_converges(3, 1, threshold));
  EXPECT_FALSE(expectation_converges(3, 1, threshold * 1.001L));
}

TEST(ExpectationThreshold, RequiresTheProportionalRegime) {
  // n = 4, f = 1 violates n < 2f + 2.
  EXPECT_THROW((void)expectation_convergence_threshold(4, 1),
               PreconditionError);
  EXPECT_THROW((void)expectation_converges(4, 1, 0.1L), PreconditionError);
}

// ---------------------------------------------------------------------------
// expected_detection_time
// ---------------------------------------------------------------------------

TEST(ExpectedDetectionTime, PZeroCollapsesBitwiseToTheFaultFreeOracle) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_unbounded_fleet();
  const ExpectationOptions options = expectation_at(0);
  for (const Real x : {1.0L, 1.5L, 7.25L, -3.0L, -16.0L}) {
    EXPECT_TRUE(value_identical(expected_detection_time(fleet, x, options),
                                fleet.detection_time(x, 0)))
        << "x=" << static_cast<double>(x);
  }
}

TEST(ExpectedDetectionTime, StrictlyDominatesTheFirstVisitForPositiveP) {
  const Fleet fleet = ProportionalAlgorithm(5, 2).build_unbounded_fleet();
  const ExpectationOptions options = expectation_at(0.3L);
  for (const Real x : {1.0L, 2.5L, -8.0L}) {
    const Real first = fleet.detection_time(x, 0);
    const Real exact = expected_detection_time(fleet, x, options);
    EXPECT_TRUE(std::isfinite(static_cast<double>(exact)));
    EXPECT_GT(exact, first) << "x=" << static_cast<double>(x);
  }
}

TEST(ExpectedDetectionTime, MonotoneNondecreasingInP) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_unbounded_fleet();
  Real previous = 0;
  for (const Real p : {0.0L, 0.1L, 0.2L, 0.3L, 0.4L, 0.5L}) {
    const Real exact =
        expected_detection_time(fleet, 3.5L, expectation_at(p));
    EXPECT_GE(exact, previous) << "p=" << static_cast<double>(p);
    previous = exact;
  }
}

TEST(ExpectedDetectionTime, POneNeverDetects) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_unbounded_fleet();
  EXPECT_TRUE(value_identical(
      expected_detection_time(fleet, 2.0L, expectation_at(1)), kInfinity));
}

TEST(ExpectedDetectionTime, DivergesPastTheLadderThreshold) {
  // threshold(3, 1) ~ 0.63: p = 0.7 is past it, p = 0.6 below it.
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_unbounded_fleet();
  EXPECT_TRUE(value_identical(
      expected_detection_time(fleet, 1.5L, expectation_at(0.7L)),
      kInfinity));
  const Real below =
      expected_detection_time(fleet, 1.5L, expectation_at(0.6L));
  EXPECT_TRUE(std::isfinite(static_cast<double>(below)));
  EXPECT_GT(below, fleet.detection_time(1.5L, 0));
}

TEST(ExpectedDetectionTime, FiniteVisitListLeavesNeverDetectMass) {
  // A bounded build passes each target finitely often, so p^K > 0 of the
  // probability never detects — E[T] must be kInfinity for ANY p > 0,
  // while p = 0 stays the plain first visit.
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_fleet(64);
  EXPECT_TRUE(value_identical(
      expected_detection_time(fleet, 2.0L, expectation_at(0.1L)),
      kInfinity));
  EXPECT_TRUE(value_identical(
      expected_detection_time(fleet, 2.0L, expectation_at(0)),
      fleet.detection_time(2.0L, 0)));
}

TEST(ExpectedDetectionTime, RepeatedCallsAreBitIdentical) {
  const Fleet fleet = ProportionalAlgorithm(5, 2).build_unbounded_fleet();
  const ExpectationOptions options = expectation_at(0.45L);
  const Real first = expected_detection_time(fleet, 6.75L, options);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_TRUE(value_identical(
        expected_detection_time(fleet, 6.75L, options), first));
  }
}

TEST(ExpectedDetectionTime, MatchesAnIndependentSeriesSummation) {
  // Cross-check the engine against a from-scratch summation of
  // sum_k t_k (1-p) p^(k-1) over the merged per-robot visit lists.  At
  // p = 0.3 on A(2, 1) the terms decay by ~0.42 per visit, so 96 merged
  // visits leave a tail far below the comparison tolerance.
  const Fleet fleet = ProportionalAlgorithm(2, 1).build_unbounded_fleet();
  const Real p = 0.3L;
  const Real x = 1.5L;
  std::vector<Real> merged;
  for (std::size_t robot = 0; robot < fleet.size(); ++robot) {
    const std::vector<Real> visits = fleet.robot(robot).visit_times(x, 48);
    merged.insert(merged.end(), visits.begin(), visits.end());
  }
  std::sort(merged.begin(), merged.end());
  ASSERT_GE(merged.size(), 64u);
  Real manual = 0;
  Real weight = 1 - p;  // (1 - p) * p^(k-1), k starting at 1
  for (const Real t : merged) {
    manual += t * weight;
    weight *= p;
  }
  const Real exact = expected_detection_time(fleet, x, expectation_at(p));
  EXPECT_NEAR(static_cast<double>(exact / manual), 1.0, 1e-9);
}

TEST(ExpectedDetectionTime, GuardsRejectBadInput) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_unbounded_fleet();
  EXPECT_THROW(
      (void)expected_detection_time(fleet, 0, expectation_at(0.1L)),
      PreconditionError);
  EXPECT_THROW(
      (void)expected_detection_time(fleet, 1, expectation_at(-0.1L)),
      PreconditionError);
  EXPECT_THROW(
      (void)expected_detection_time(fleet, 1, expectation_at(1.5L)),
      PreconditionError);
  ExpectationOptions bad_tol = expectation_at(0.1L);
  bad_tol.rel_tol = 0;
  EXPECT_THROW((void)expected_detection_time(fleet, 1, bad_tol),
               PreconditionError);
  ExpectationOptions bad_cap = expectation_at(0.1L);
  bad_cap.max_visits = 8;
  EXPECT_THROW((void)expected_detection_time(fleet, 1, bad_cap),
               PreconditionError);
}

// ---------------------------------------------------------------------------
// measure_expected_cr
// ---------------------------------------------------------------------------

TEST(MeasureExpectedCr, PZeroBitIdenticalToMeasureCrOnEveryRegimePair) {
  for (const auto& [n, f] : proportional_regime_pairs(12)) {
    const Fleet fleet = ProportionalAlgorithm(n, f).build_unbounded_fleet();
    const CrEvalResult expected =
        measure_expected_cr(fleet, expectation_at(0));
    const CrEvalResult fault_free = measure_cr(fleet, 0, small_eval());
    expect_scan_identical(expected, fault_free,
                          "n=" + std::to_string(n) +
                              " f=" + std::to_string(f));
  }
}

/// The grid leg of the closed-form-vs-MC comparison: one differential
/// run per regime pair at the given p.  The engine branches internally —
/// CLT-tight where the VARIANCE converges (p^(2n) kappa^4 <= 0.8),
/// divergence-certifying past the mean threshold, sanity-only in the
/// heavy-tailed band between — so a single green verdict per pair is the
/// whole contract.
void run_grid_differential(const Real p) {
  const std::vector<Real> targets = {1.5L, -4.0L, 11.0L};
  for (const auto& [n, f] : proportional_regime_pairs(12)) {
    const verify::DifferentialResult result =
        verify::diff_expectation_vs_montecarlo(n, f, p, targets,
                                               /*seed=*/0xe4ec7ed5eedULL,
                                               /*trials=*/300);
    EXPECT_TRUE(result.ok())
        << "n=" << n << " f=" << f << " p=" << static_cast<double>(p)
        << ": " << result.message;
  }
}

TEST(MeasureExpectedCr, AgreesWithMonteCarloAcrossTheGridAtP01) {
  run_grid_differential(0.1L);
}

TEST(MeasureExpectedCr, AgreesWithMonteCarloAcrossTheGridAtP05) {
  run_grid_differential(0.5L);
}

TEST(MeasureExpectedCr, AgreesWithMonteCarloAcrossTheGridAtP09) {
  // At p = 0.9 most pairs are past their ladder threshold — the
  // differential's divergence branch certifies kInfinity there, while
  // the deep-fault pairs (e.g. (12, 8), threshold 0.9125) stay
  // convergent and CLT-comparable.  Assert both populations occur.
  int convergent = 0;
  for (const auto& [n, f] : proportional_regime_pairs(12)) {
    if (expectation_converges(n, f, 0.9L)) ++convergent;
  }
  EXPECT_GT(convergent, 0);
  EXPECT_LT(convergent, 41);
  run_grid_differential(0.9L);
}

TEST(MeasureExpectedCr, DivergentScanPinsTheNonFiniteCodec) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_unbounded_fleet();
  const CrEvalResult scan = measure_expected_cr(fleet, expectation_at(0.8L));
  EXPECT_TRUE(value_identical(scan.cr, kInfinity));
  EXPECT_EQ(scan.undetected_probes, scan.probes);
  EXPECT_EQ(encode_real_field(scan.cr, 12), "inf");
  EXPECT_EQ(encode_real_field(-scan.cr, 12), "-inf");
}

// ---------------------------------------------------------------------------
// expectation_sweep
// ---------------------------------------------------------------------------

TEST(ExpectationSweep, CoversTheGridAndFlagsDivergence) {
  ExpectationSweepOptions options;
  options.n_max = 3;  // pairs (2,1), (3,1), (3,2)
  options.p_count = 2;
  options.p_max = 0.8L;  // past every n<=3 threshold (max 2^(-1/3)=0.794)
  options.window_hi = 8;
  const std::vector<ExpectationSweepRow> rows = expectation_sweep(options);
  ASSERT_EQ(rows.size(), 6u);
  for (const ExpectationSweepRow& row : rows) {
    if (row.p == 0) {
      EXPECT_TRUE(row.converges) << "n=" << row.n << " f=" << row.f;
      EXPECT_TRUE(std::isfinite(static_cast<double>(row.expected_cr)));
      EXPECT_EQ(row.undetected_probes, 0);
    } else {
      EXPECT_FALSE(row.converges) << "n=" << row.n << " f=" << row.f;
      EXPECT_TRUE(value_identical(row.expected_cr, kInfinity));
    }
  }
}

TEST(ExpectationSweep, ReplaysBitIdentically) {
  ExpectationSweepOptions options;
  options.n_max = 4;
  options.p_count = 3;
  options.p_max = 0.4L;
  options.window_hi = 8;
  const std::vector<ExpectationSweepRow> first = expectation_sweep(options);
  const std::vector<ExpectationSweepRow> second = expectation_sweep(options);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].n, second[i].n);
    EXPECT_EQ(first[i].f, second[i].f);
    EXPECT_TRUE(value_identical(first[i].p, second[i].p));
    EXPECT_EQ(first[i].converges, second[i].converges);
    EXPECT_TRUE(value_identical(first[i].expected_cr,
                                second[i].expected_cr));
    EXPECT_TRUE(value_identical(first[i].argmax, second[i].argmax));
    EXPECT_EQ(first[i].undetected_probes, second[i].undetected_probes);
  }
}

// ---------------------------------------------------------------------------
// Service layer: the probabilistic fault regime
// ---------------------------------------------------------------------------

CrQuery probabilistic_query(const int n, const int f, const Real p,
                            const Real window_hi = 16) {
  CrQuery query;
  query.n = n;
  query.f = f;
  query.window_hi = window_hi;
  query.regime = FaultRegime::kProbabilistic;
  query.fault_p = p;
  return query;
}

void expect_result_identical(const QueryResult& a, const QueryResult& b,
                             const std::string& context) {
  EXPECT_EQ(a.feasible, b.feasible) << context;
  EXPECT_TRUE(value_identical(a.cr, b.cr)) << context;
  EXPECT_TRUE(value_identical(a.argmax, b.argmax)) << context;
  EXPECT_TRUE(value_identical(a.cr_positive, b.cr_positive)) << context;
  EXPECT_TRUE(value_identical(a.cr_negative, b.cr_negative)) << context;
  EXPECT_EQ(a.probes, b.probes) << context;
  EXPECT_EQ(a.undetected_probes, b.undetected_probes) << context;
}

TEST(SvcProbabilistic, DirectPathRunsTheExpectationEngine) {
  const QueryResult direct =
      svc::evaluate_query_direct(probabilistic_query(5, 2, 0.25L));
  const Fleet fleet = ProportionalAlgorithm(5, 2).build_unbounded_fleet();
  ExpectationOptions options = expectation_at(0.25L);
  options.eval.interior_samples = 4;  // the query default
  const CrEvalResult scan = measure_expected_cr(fleet, options);
  EXPECT_TRUE(direct.feasible);
  EXPECT_TRUE(value_identical(direct.cr, scan.cr));
  EXPECT_TRUE(value_identical(direct.argmax, scan.argmax));
  EXPECT_TRUE(value_identical(direct.cr_positive, scan.cr_positive));
  EXPECT_TRUE(value_identical(direct.cr_negative, scan.cr_negative));
  EXPECT_EQ(direct.probes, scan.probes);
  EXPECT_EQ(direct.undetected_probes, scan.undetected_probes);
}

TEST(SvcProbabilistic, ServiceMatchesDirectColdAndWarm) {
  QueryService service;
  const CrQuery query = probabilistic_query(3, 1, 0.4L);
  const QueryResult direct = svc::evaluate_query_direct(query);
  const QueryResult cold = service.evaluate(query);
  const QueryResult warm = service.evaluate(query);
  expect_result_identical(cold, direct, "cold");
  expect_result_identical(warm, direct, "warm");
  EXPECT_GT(service.stats().cache_hits, 0u);
}

TEST(SvcProbabilistic, CacheOffMatchesCacheOn) {
  QueryServiceOptions no_cache;
  no_cache.cache_results = false;
  QueryService cached;
  QueryService uncached(no_cache);
  for (const Real p : {0.0L, 0.1L, 0.5L, 0.8L}) {
    const CrQuery query = probabilistic_query(3, 1, p);
    expect_result_identical(cached.evaluate(query),
                            uncached.evaluate(query),
                            "p=" + std::to_string(static_cast<double>(p)));
  }
  EXPECT_EQ(uncached.stats().cache_hits, 0u);
}

TEST(SvcProbabilistic, QueryKeySeparatesFaultP) {
  const CrQuery a = svc::canonicalize_query(probabilistic_query(3, 1, 0.1L));
  const CrQuery b = svc::canonicalize_query(probabilistic_query(3, 1, 0.2L));
  const CrQuery a_again =
      svc::canonicalize_query(probabilistic_query(3, 1, 0.1L));
  EXPECT_NE(svc::query_key(a), svc::query_key(b));
  EXPECT_EQ(svc::query_key(a), svc::query_key(a_again));
  // fault_p is a continuous cache parameter WITHIN a regime pair: both
  // keys live in the same shard.
  EXPECT_EQ(svc::query_shard(a, 8), svc::query_shard(b, 8));
  // The plain regime at the same pair must not collide with p = 0.
  CrQuery plain;
  plain.n = 3;
  plain.f = 1;
  plain.window_hi = 16;
  EXPECT_NE(svc::query_key(svc::canonicalize_query(plain)),
            svc::query_key(a));
}

TEST(SvcProbabilistic, CanonicalizeRejectsOutOfRangeFaultP) {
  EXPECT_THROW((void)svc::canonicalize_query(probabilistic_query(3, 1, -0.1L)),
               PreconditionError);
  EXPECT_THROW((void)svc::canonicalize_query(probabilistic_query(3, 1, 1.0L)),
               PreconditionError);
  EXPECT_THROW((void)svc::canonicalize_query(probabilistic_query(3, 1, kNaN)),
               PreconditionError);
  // fault_p is probabilistic-only: any other regime must reject it.
  CrQuery plain;
  plain.n = 3;
  plain.f = 1;
  plain.fault_p = 0.5L;
  EXPECT_THROW((void)svc::canonicalize_query(plain), PreconditionError);
}

TEST(SvcProbabilistic, ThreadRaceStaysValueIdentical) {
  // The query mix deliberately spans convergent, divergent, and p = 0
  // probabilistic queries across two regime pairs, so racing threads
  // share backends AND collide on cache keys.
  std::vector<CrQuery> mix;
  for (const Real p : {0.0L, 0.1L, 0.4L, 0.8L}) {
    mix.push_back(probabilistic_query(3, 1, p, 8));
    mix.push_back(probabilistic_query(5, 2, p, 8));
  }
  std::vector<QueryResult> reference;
  reference.reserve(mix.size());
  for (const CrQuery& query : mix) {
    reference.push_back(svc::evaluate_query_direct(query));
  }
  for (const int threads : {1, 2, 8}) {
    for (const bool cache : {true, false}) {
      QueryServiceOptions options;
      options.cache_results = cache;
      QueryService service(options);
      std::atomic<int> mismatches{0};
      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&service, &mix, &reference, &mismatches, t] {
          for (std::size_t i = 0; i < mix.size() * 4; ++i) {
            const std::size_t pick =
                (i + static_cast<std::size_t>(t)) % mix.size();
            const QueryResult got = service.evaluate(mix[pick]);
            const QueryResult& want = reference[pick];
            if (!value_identical(got.cr, want.cr) ||
                !value_identical(got.argmax, want.argmax) ||
                got.undetected_probes != want.undetected_probes) {
              mismatches.fetch_add(1);
            }
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      EXPECT_EQ(mismatches.load(), 0)
          << "threads=" << threads << " cache=" << cache;
      const QueryService::Stats stats = service.stats();
      EXPECT_EQ(stats.cache_hits + stats.coalesced + stats.evaluations,
                stats.queries)
          << "threads=" << threads << " cache=" << cache;
    }
  }
}

TEST(SvcProbabilistic, WirePinsInfAndReplaysByteIdentically) {
  svc::QueryServer server;
  const std::string divergent =
      R"({"id": 1, "op": "cr", "n": 3, "f": 1, "regime": "probabilistic",)"
      R"( "fault_p": 0.8, "window_hi": 8})";
  const std::string cold = server.handle_line(divergent);
  // Divergent expected CR crosses the wire as the QUOTED codec spelling,
  // not a bare token JSON parsers would reject.
  EXPECT_NE(cold.find("\"cr\":\"inf\""), std::string::npos) << cold;
  EXPECT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;
  EXPECT_EQ(server.handle_line(divergent), cold);

  const std::string convergent =
      R"({"id": 2, "op": "cr", "n": 3, "f": 1, "regime": "probabilistic",)"
      R"( "fault_p": 0.25, "window_hi": 8})";
  const std::string response = server.handle_line(convergent);
  EXPECT_EQ(response.find("\"cr\":\"inf\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  CrQuery query = probabilistic_query(3, 1, 0.25L, 8);
  EXPECT_EQ(response,
            svc::render_response(2, svc::evaluate_query_direct(query)));
}

}  // namespace
}  // namespace linesearch

// Tests for eval/profile.hpp — exact piecewise detection-time profiles.
#include "eval/profile.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "core/competitive.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

Fleet a31() { return ProportionalAlgorithm(3, 1).build_fleet(1500); }

TEST(Profile, PiecesTileTheWindowContiguously) {
  const std::vector<ProfilePiece> pieces =
      detection_profile(a31(), 1, +1, {.window_hi = 16});
  ASSERT_FALSE(pieces.empty());
  EXPECT_EQ(pieces.front().lo, 1.0L);
  // The window edge may be one ulp away from a turning point (r^3 = 16
  // exactly in reals but not in floats), so the tiling is exact up to
  // sub-epsilon skipped bands.
  EXPECT_NEAR(static_cast<double>(pieces.back().hi), 16.0, 1e-12);
  for (std::size_t i = 0; i + 1 < pieces.size(); ++i) {
    EXPECT_TRUE(approx_equal(pieces[i].hi, pieces[i + 1].lo, 1e-14L)) << i;
    EXPECT_LT(pieces[i].lo, pieces[i].hi);
  }
}

TEST(Profile, ExactAgainstDetectionQueries) {
  const Fleet fleet = a31();
  const std::vector<ProfilePiece> pieces =
      detection_profile(fleet, 1, +1, {.window_hi = 16});
  EXPECT_LT(profile_max_error(fleet, 1, pieces, 8), 1e-12L);
}

TEST(Profile, NegativeSideMirroredAndExact) {
  const Fleet fleet = a31();
  const std::vector<ProfilePiece> pieces =
      detection_profile(fleet, 1, -1, {.window_hi = 16});
  ASSERT_FALSE(pieces.empty());
  EXPECT_NEAR(static_cast<double>(pieces.front().lo), -16.0, 1e-12);
  EXPECT_EQ(pieces.back().hi, -1.0L);
  for (std::size_t i = 0; i + 1 < pieces.size(); ++i) {
    EXPECT_TRUE(approx_equal(pieces[i].hi, pieces[i + 1].lo, 1e-14L));
  }
  EXPECT_LT(profile_max_error(fleet, 1, pieces, 8), 1e-12L);
}

TEST(Profile, UnitSlopesForPureZigZagSchedules) {
  // Inside the window the A(3,1) robots visit every point moving
  // outward at unit speed, so every piece has slope +1 on the positive
  // side (Lemma 3's "K decreasing between turning points" in exact
  // form) and -1 mirrored.
  const std::vector<ProfilePiece> positive =
      detection_profile(a31(), 1, +1, {.window_hi = 16});
  for (const ProfilePiece& piece : positive) {
    EXPECT_NEAR(static_cast<double>(piece.slope), 1.0, 1e-12);
  }
  const std::vector<ProfilePiece> negative =
      detection_profile(a31(), 1, -1, {.window_hi = 16});
  for (const ProfilePiece& piece : negative) {
    EXPECT_NEAR(static_cast<double>(piece.slope), -1.0, 1e-12);
  }
}

TEST(Profile, JumpsUpAtPieceBoundaries) {
  // Lemma 3 exactly: at each piece boundary the next piece starts ABOVE
  // where the previous ended (an upward jump of T at turning points).
  const std::vector<ProfilePiece> pieces =
      detection_profile(a31(), 1, +1, {.window_hi = 16});
  ASSERT_GE(pieces.size(), 3u);
  for (std::size_t i = 0; i + 1 < pieces.size(); ++i) {
    EXPECT_GT(pieces[i + 1].value_at_lo,
              pieces[i].value_at_hi() - 1e-12L);
  }
}

TEST(Profile, SupremumMatchesCertifiedCr) {
  // max over pieces of value_at_lo / lo equals the certified CR (the sup
  // is attained at piece left ends for slope-1 pieces).
  const Fleet fleet = a31();
  const std::vector<ProfilePiece> pieces =
      detection_profile(fleet, 1, +1, {.window_hi = 16});
  Real sup = 0;
  for (const ProfilePiece& piece : pieces) {
    sup = std::max(sup, piece.value_at_lo / piece.lo);
  }
  EXPECT_LT(std::fabs(sup - algorithm_cr(3, 1)), 1e-14L);
}

TEST(Profile, BreakpointsInsideCriticalIntervals) {
  // The crossing fleet from the exact-evaluator tests: T_2 switches
  // lines inside an interval; the profile must cut a piece there.
  const Fleet fleet({Trajectory({{0, 0}, {20, 10}}),
                     Trajectory({{0, 0}, {5, 0}, {15, 10}}),
                     Trajectory({{0, 0}, {20, -10}}),
                     Trajectory({{0, 0}, {5, 0}, {15, -10}})});
  const std::vector<ProfilePiece> pieces = detection_profile(
      fleet, 1, +1, {.window_lo = 1, .window_hi = 9});
  // T_2(x) = max(2x, 5+x): the late robot (5+x) dominates up to x = 5,
  // the slow robot (2x) beyond.
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_NEAR(static_cast<double>(pieces[0].slope), 1.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(pieces[0].hi), 5.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(pieces[1].slope), 2.0, 1e-12);
  EXPECT_LT(profile_max_error(fleet, 1, pieces, 8), 1e-15L);
}

TEST(Profile, CoalesceMergesContinuations) {
  const Fleet fleet({Trajectory({{0, 0}, {20, 10}}),
                     Trajectory({{0, 0}, {20, -10}})});
  // One half-speed sweeper per side: with f = 0, T_1(x) = 2x on the
  // whole window — a single piece after coalescing.
  const std::vector<ProfilePiece> merged = detection_profile(
      fleet, 0, +1, {.window_lo = 1, .window_hi = 9});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_NEAR(static_cast<double>(merged[0].slope), 2.0, 1e-12);
  ProfileOptions no_merge;
  no_merge.window_lo = 1;
  no_merge.window_hi = 9;
  no_merge.coalesce = false;
  const std::vector<ProfilePiece> raw =
      detection_profile(fleet, 0, +1, no_merge);
  EXPECT_GE(raw.size(), merged.size());
}

TEST(Profile, UncoveredWindowThrowsOrSkips) {
  const Fleet fleet({Trajectory({{0, 0}, {5, 5}})});
  EXPECT_THROW((void)detection_profile(fleet, 0, +1,
                                       {.window_lo = 1, .window_hi = 9}),
               NumericError);
  ProfileOptions lenient;
  lenient.window_lo = 1;
  lenient.window_hi = 9;
  lenient.require_finite = false;
  const std::vector<ProfilePiece> pieces =
      detection_profile(fleet, 0, +1, lenient);
  ASSERT_FALSE(pieces.empty());
  EXPECT_LE(pieces.back().hi, 5.0L + 1e-12L);
}

TEST(Profile, GuardsArguments) {
  const Fleet fleet = a31();
  EXPECT_THROW((void)detection_profile(fleet, -1, +1), PreconditionError);
  EXPECT_THROW((void)detection_profile(fleet, 3, +1), PreconditionError);
  EXPECT_THROW((void)detection_profile(fleet, 1, 0), PreconditionError);
  EXPECT_THROW((void)profile_max_error(fleet, 1, {}, 0),
               PreconditionError);
}

}  // namespace
}  // namespace linesearch

// Tests for eval/group_search.hpp — last-arrival semantics.
#include "eval/group_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "core/competitive.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(LastArrival, MaxOfFirstVisits) {
  const Fleet fleet({Trajectory({{0, 0}, {10, 10}}),
                     Trajectory({{3, 0}, {13, 10}})});
  EXPECT_EQ(last_arrival_time(fleet, 5), 8.0L);  // visits at 5 and 8
  EXPECT_TRUE(std::isinf(last_arrival_time(fleet, -1)));
}

TEST(LastArrival, EqualsDetectionWithAllButOneFaulty) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(300);
  for (const Real x : {1.5L, -4.0L, 9.0L}) {
    EXPECT_EQ(last_arrival_time(fleet, x), fleet.detection_time(x, 2));
  }
}

TEST(GroupCr, GroupDoublingAchievesNine) {
  // [Chrobak et al.]: many searchers moving together do exactly as well
  // as one — the group CR of the pack is the cow-path 9.
  const GroupDoubling pack(4, 1);
  const Fleet fleet = pack.build_fleet(2000);
  const CrEvalResult result = measure_group_cr(fleet, {.window_hi = 64});
  EXPECT_NEAR(static_cast<double>(result.cr), 9.0, 1e-6);
}

TEST(GroupCr, SpreadOutScheduleIsWorseForGroupSearch) {
  // A(3,1) optimizes first-RELIABLE-arrival by spreading robots out;
  // under last-arrival semantics that spread is a liability and the
  // group CR exceeds 9.
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(2000);
  const Real group = measure_group_cr(fleet, {.window_hi = 32}).cr;
  const Real individual = measure_cr(fleet, 1, {.window_hi = 32}).cr;
  EXPECT_GT(group, 9.0L);
  EXPECT_GT(group, individual);
}

TEST(GroupCr, TwoGroupSplitNeverAssembles) {
  // The split's two halves never meet: last-arrival time is infinite
  // everywhere, demonstrating that first-arrival optimality can be
  // maximally bad for group search.
  const TwoGroupSplit split(4, 1);
  const Fleet fleet = split.build_fleet(100);
  EXPECT_TRUE(std::isinf(last_arrival_time(fleet, 5)));
  CrEvalOptions options;
  options.window_hi = 16;
  EXPECT_THROW((void)measure_group_cr(fleet, options), NumericError);
}

}  // namespace
}  // namespace linesearch

// Tests for eval/exact.hpp — the certified, probe-free CR evaluator.
#include "eval/exact.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "core/competitive.hpp"
#include "eval/cr_eval.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(CertifiedCr, MatchesTheorem1ToRoundOff) {
  // The whole point: NO probe epsilon, so agreement with the closed form
  // is limited only by long-double arithmetic — orders tighter than
  // measure_cr's 1e-9.
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {2, 1}, {3, 1}, {3, 2}, {5, 2}, {5, 3}}) {
    const ProportionalAlgorithm algo(n, f);
    const Fleet fleet = algo.build_fleet(2000);
    const ExactCrResult exact =
        certified_cr(fleet, f, {.window_hi = 16});
    const Real theory = algorithm_cr(n, f);
    EXPECT_LT(std::fabs(exact.cr - theory) / theory, 1e-15L)
        << "n=" << n << " f=" << f
        << " got " << static_cast<double>(exact.cr);
  }
}

TEST(CertifiedCr, TightensMeasureCr) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(2000);
  const Real probed = measure_cr(fleet, 1, {.window_hi = 16}).cr;
  const Real exact = certified_cr(fleet, 1, {.window_hi = 16}).cr;
  // Probing approaches the sup from below; certified nails it.
  EXPECT_GE(exact, probed);
  EXPECT_LT(exact - probed, 1e-7L);
  EXPECT_LT(std::fabs(exact - algorithm_cr(3, 1)), 1e-15L);
}

TEST(CertifiedCr, ArgSupIsATurningMagnitude) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(2000);
  const ExactCrResult exact = certified_cr(fleet, 1, {.window_hi = 16});
  bool found = false;
  for (const int side : {+1, -1}) {
    for (const Real tau : fleet.turning_positions(side)) {
      if (approx_equal(std::fabs(exact.argsup), tau, 1e-12L)) found = true;
    }
  }
  EXPECT_TRUE(found) << static_cast<double>(exact.argsup);
}

TEST(CertifiedCr, TwoGroupSplitIsExactlyOne) {
  const TwoGroupSplit split(4, 1);
  const Fleet fleet = split.build_fleet(300);
  const ExactCrResult exact = certified_cr(fleet, 1, {.window_hi = 64});
  EXPECT_EQ(exact.cr, 1.0L);  // exactly, not approximately
}

TEST(CertifiedCr, NonUnitSlopeLinesStillEvaluateExactly) {
  // Uniform-offset robots sweep part of the window on their 1/beta-speed
  // prefixes (first-visit lines of slope beta, not 1); the certified
  // evaluator must still dominate the probed estimate and stay close.
  const UniformOffsetZigzag uniform(3, 1);
  const Fleet fleet = uniform.build_fleet(2000);
  const ExactCrResult exact = certified_cr(fleet, 1, {.window_hi = 12});
  const Real probed = measure_cr(fleet, 1,
                                 {.window_hi = 12, .interior_samples = 32})
                          .cr;
  EXPECT_GE(exact.cr, probed - 1e-9L);
  EXPECT_LT(exact.cr, probed + 0.05L);
}

TEST(CertifiedCr, OrderStatisticBreakpointsAreExamined) {
  // Hand-built fleet where the (f+1)-st order statistic switches lines
  // INSIDE a critical interval: robot A sweeps right at speed 1/2
  // (line 2x), robot B waits 5 then sweeps at speed 1 (line 5+x); the
  // max switches at x = 5.  Robots C, D mirror them leftward.
  const auto slow = [](const int side) {
    return Trajectory({{0, 0}, {20, static_cast<Real>(side) * 10}});
  };
  const auto late = [](const int side) {
    TrajectoryBuilder b;
    b.start_at(0, 0);
    b.wait_until(5).move_to(static_cast<Real>(side) * 10);
    return std::move(b).build();
  };
  const Fleet fleet({slow(+1), late(+1), slow(-1), late(-1)});

  const ExactCrResult exact = certified_cr(fleet, 1, {.window_hi = 9});
  EXPECT_GE(exact.breakpoints, 2);  // the x = 5 crossing on each side
  // T_2(x) = max(2x, 5+x); K = max(2, 1 + 5/x); sup over [1,9] is 6 at 1.
  EXPECT_LT(std::fabs(exact.cr - 6.0L), 1e-15L);
  EXPECT_NEAR(static_cast<double>(std::fabs(exact.argsup)), 1.0, 1e-15);
}

TEST(CertifiedCr, ClassicCowPathSupremum) {
  // Largest turning magnitude in [1, 12] is 8, so the exact sup there is
  // 9 - 2/8 = 8.75 (classic affine-start correction).
  const ClassicCowPath classic(1, 0);
  const Fleet fleet = classic.build_fleet(3000);
  const ExactCrResult exact = certified_cr(fleet, 0, {.window_hi = 12});
  EXPECT_LT(std::fabs(exact.cr - 8.75L), 1e-15L);
  EXPECT_NEAR(static_cast<double>(exact.argsup), -8.0, 1e-12);
}

TEST(CertifiedCr, UncoveredWindowThrowsOrSkips) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(4);
  EXPECT_THROW((void)certified_cr(fleet, 1, {.window_hi = 4096}),
               NumericError);
  ExactCrOptions lenient;
  lenient.window_hi = 4096;
  lenient.require_finite = false;
  const ExactCrResult exact = certified_cr(fleet, 1, lenient);
  EXPECT_TRUE(std::isfinite(exact.cr));
  EXPECT_GT(exact.cr, 1.0L);
}

TEST(CertifiedCr, GuardsArguments) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(50);
  EXPECT_THROW((void)certified_cr(fleet, -1), PreconditionError);
  EXPECT_THROW((void)certified_cr(fleet, 3), PreconditionError);
  EXPECT_THROW((void)certified_cr(fleet, 1, {.window_lo = 0}),
               PreconditionError);
  EXPECT_THROW(
      (void)certified_cr(fleet, 1, {.window_lo = 9, .window_hi = 3}),
      PreconditionError);
}

TEST(CertifiedCr, IntervalAndBreakpointCountsReported) {
  const ProportionalAlgorithm algo(5, 2);
  const Fleet fleet = algo.build_fleet(500);
  const ExactCrResult exact = certified_cr(fleet, 2, {.window_hi = 32});
  EXPECT_GT(exact.intervals, 4);
  // Pure unit-speed schedule inside the window: parallel lines, very few
  // (possibly zero) crossings.
  EXPECT_GE(exact.breakpoints, 0);
}

TEST(CertifiedCr, AgreesWithMeasureAcrossTheGrid) {
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {4, 2}, {4, 3}, {7, 4}, {8, 5}}) {
    const ProportionalAlgorithm algo(n, f);
    const Fleet fleet = algo.build_fleet(1000);
    const Real exact = certified_cr(fleet, f, {.window_hi = 10}).cr;
    const Real probed = measure_cr(fleet, f, {.window_hi = 10}).cr;
    EXPECT_NEAR(static_cast<double>(exact), static_cast<double>(probed),
                1e-7)
        << n << "," << f;
  }
}

}  // namespace
}  // namespace linesearch

// Tests for eval/discover.hpp — numerical rediscovery of the paper's
// schedule — and for the Nelder-Mead machinery it relies on.
#include "eval/discover.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/optimize.hpp"
#include "core/competitive.hpp"
#include "core/custom.hpp"
#include "core/proportional.hpp"
#include "sim/zigzag.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(NelderMead, QuadraticBowl) {
  const MinimizeNdResult r = nelder_mead(
      [](const std::vector<Real>& x) {
        return (x[0] - 1) * (x[0] - 1) + 2 * (x[1] + 3) * (x[1] + 3);
      },
      {0, 0});
  EXPECT_NEAR(static_cast<double>(r.x[0]), 1.0, 1e-6);
  EXPECT_NEAR(static_cast<double>(r.x[1]), -3.0, 1e-6);
  EXPECT_NEAR(static_cast<double>(r.fx), 0.0, 1e-10);
}

TEST(NelderMead, RosenbrockValley) {
  const MinimizeNdResult r = nelder_mead(
      [](const std::vector<Real>& x) {
        const Real a = 1 - x[0];
        const Real b = x[1] - x[0] * x[0];
        return a * a + 100 * b * b;
      },
      {-1.2L, 1.0L}, {.initial_step = 0.5L, .max_iterations = 5000});
  EXPECT_NEAR(static_cast<double>(r.x[0]), 1.0, 1e-4);
  EXPECT_NEAR(static_cast<double>(r.x[1]), 1.0, 1e-4);
}

TEST(NelderMead, OneDimensionWorks) {
  const MinimizeNdResult r = nelder_mead(
      [](const std::vector<Real>& x) { return std::cosh(x[0] - 2); },
      {0.0L});
  EXPECT_NEAR(static_cast<double>(r.x[0]), 2.0, 1e-6);
}

TEST(NelderMead, EmptyStartThrows) {
  EXPECT_THROW(
      (void)nelder_mead([](const std::vector<Real>&) { return Real{0}; },
                        {}),
      PreconditionError);
}

TEST(OffsetsCr, GeometricOffsetsReproduceTheorem1) {
  for (const auto& [n, f] :
       std::vector<std::pair<int, int>>{{3, 1}, {5, 2}, {5, 3}}) {
    const Real beta = optimal_beta(n, f);
    const Real r = proportionality_ratio(n, beta);
    std::vector<Real> geometric;
    Real s = 1;
    for (int i = 0; i < n; ++i) {
      geometric.push_back(s);
      s *= r;
    }
    EXPECT_NEAR(static_cast<double>(offsets_cr(beta, geometric, f)),
                static_cast<double>(algorithm_cr(n, f)), 1e-12)
        << n << "," << f;
  }
}

TEST(OffsetsCr, AnyOtherOffsetsAreNoBetter) {
  const int n = 3, f = 1;
  const Real beta = optimal_beta(n, f);
  const Real best = algorithm_cr(n, f);
  const std::vector<std::vector<Real>> candidates{
      {1, 2, 4}, {1, 6, 11}, {1, 3, 9}, {1, 1.2L, 14}};
  for (const std::vector<Real>& offsets : candidates) {
    EXPECT_GE(offsets_cr(beta, offsets, f), best - 1e-12L);
  }
}

TEST(Discovery, RediscoversProportionalScheduleFor31) {
  const DiscoveryResult found = discover_schedule(3, 1);
  const Real r = proportionality_ratio(3, optimal_beta(3, 1));
  EXPECT_NEAR(static_cast<double>(found.cr),
              static_cast<double>(algorithm_cr(3, 1)), 1e-6);
  ASSERT_EQ(found.ratios.size(), 3u);
  for (const Real ratio : found.ratios) {
    EXPECT_NEAR(static_cast<double>(ratio), static_cast<double>(r), 1e-3);
  }
  // The naive uniform start was much worse.
  EXPECT_GT(found.initial_cr, found.cr + 2);
}

TEST(Discovery, RediscoversProportionalScheduleFor53) {
  const DiscoveryResult found = discover_schedule(5, 3);
  const Real r = proportionality_ratio(5, optimal_beta(5, 3));
  EXPECT_NEAR(static_cast<double>(found.cr),
              static_cast<double>(algorithm_cr(5, 3)), 1e-6);
  for (const Real ratio : found.ratios) {
    EXPECT_NEAR(static_cast<double>(ratio), static_cast<double>(r), 1e-3);
  }
}

TEST(Discovery, DoublingDegeneracyForNEqualsFPlus1) {
  // For n = f+1 every beta=3 cone schedule achieves exactly 9 regardless
  // of the interleaving (each robot's personal sup is 9 and dominates),
  // so the optimizer reports theory-value 9 straight from the uniform
  // start — the interleaving is genuinely irrelevant in this regime.
  const DiscoveryResult found = discover_schedule(3, 2);
  EXPECT_NEAR(static_cast<double>(found.initial_cr), 9.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(found.cr), 9.0, 1e-9);
}

TEST(Discovery, GuardsRegime) {
  EXPECT_THROW((void)discover_schedule(4, 1), PreconditionError);
}

TEST(CustomFleet, OffsetRobotStartsBackwardExtended) {
  // s in [1, kappa): one backward step, negative start; s in [kappa,
  // kappa^2): two steps, positive start below 1.
  const Real beta = 3;  // kappa = 2
  const Trajectory low = make_offset_robot(beta, 1.5L, 100);
  EXPECT_LT(low.waypoints()[1].position, 0.0L);
  const Trajectory high = make_offset_robot(beta, 3.0L, 100);
  EXPECT_GT(high.waypoints()[1].position, 0.0L);
  EXPECT_LT(high.waypoints()[1].position, 1.0L);
  for (const Trajectory* t : {&low, &high}) {
    EXPECT_TRUE(within_cone(*t, beta));
    EXPECT_EQ(t->start_time(), 0.0L);
  }
}

TEST(CustomFleet, GuardsMagnitudeRange) {
  EXPECT_THROW((void)make_offset_robot(3, 0.5L, 100), PreconditionError);
  EXPECT_THROW((void)make_offset_robot(3, 4.0L, 100), PreconditionError);
  EXPECT_THROW((void)build_cone_fleet(3, {}, 100), PreconditionError);
}

}  // namespace
}  // namespace linesearch

// Tests for eval/cr_eval.hpp — the empirical competitive-ratio evaluator.
#include "eval/cr_eval.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "core/competitive.hpp"
#include "util/error.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace {

using verify::value_identical;

TEST(MeasureCr, TwoGroupSplitIsExactlyOne) {
  const TwoGroupSplit split(4, 1);
  const Fleet fleet = split.build_fleet(200);
  const CrEvalResult result = measure_cr(fleet, 1, {.window_hi = 50});
  EXPECT_NEAR(static_cast<double>(result.cr), 1.0, 1e-9);
}

TEST(MeasureCr, SingleRobotDoublingIsNine) {
  // The classic cow-path result, recovered empirically.
  const GroupDoubling single(1, 0);
  const Fleet fleet = single.build_fleet(2000);
  const CrEvalResult result = measure_cr(fleet, 0, {.window_hi = 100});
  EXPECT_NEAR(static_cast<double>(result.cr), 9.0, 1e-6);
}

TEST(MeasureCr, GroupDoublingStaysNineForAnyF) {
  const GroupDoubling pack(4, 2);
  const Fleet fleet = pack.build_fleet(2000);
  const CrEvalResult r0 = measure_cr(fleet, 0, {.window_hi = 100});
  const CrEvalResult r2 = measure_cr(fleet, 2, {.window_hi = 100});
  EXPECT_NEAR(static_cast<double>(r0.cr), 9.0, 1e-6);
  EXPECT_NEAR(static_cast<double>(r2.cr), 9.0, 1e-6);
}

TEST(MeasureCr, MatchesTheorem1OnA31) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(1000);
  const CrEvalResult result = measure_cr(fleet, 1, {.window_hi = 60});
  EXPECT_NEAR(static_cast<double>(result.cr),
              static_cast<double>(algorithm_cr(3, 1)), 1e-6);
}

TEST(MeasureCr, BothHalfLinesAgreeForProportional) {
  // Footnote 1 of the paper: the negative side attains the same supremum.
  const ProportionalAlgorithm algo(5, 3);
  const Fleet fleet = algo.build_fleet(1500);
  const CrEvalResult result = measure_cr(fleet, 3, {.window_hi = 50});
  EXPECT_NEAR(static_cast<double>(result.cr_positive),
              static_cast<double>(result.cr_negative), 1e-4);
}

TEST(MeasureCr, ArgmaxSitsJustPastATurningPoint) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(1000);
  const CrEvalResult result = measure_cr(fleet, 1, {.window_hi = 60});
  // The sup is approached at tau*(1+eps) for some turning magnitude tau.
  const Real magnitude = std::fabs(result.argmax);
  bool near_turn = false;
  for (const int side : {+1, -1}) {
    for (const Real tau : fleet.turning_positions(side)) {
      if (std::fabs(magnitude / tau - 1) < 1e-6L) near_turn = true;
    }
  }
  EXPECT_TRUE(near_turn) << static_cast<double>(result.argmax);
}

TEST(MeasureCr, UndetectedProbeThrowsWhenRequired) {
  // Fleet far too small for the window: the (f+1)-st visit of far targets
  // never happens inside the trajectories.
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(4);
  EXPECT_THROW((void)measure_cr(fleet, 1, {.window_hi = 4096}),
               NumericError);
}

TEST(MeasureCr, UndetectedProbeSkippedWhenNotRequired) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(4);
  CrEvalOptions options;
  // Window far beyond the fleet's reach: the far probes are undetected,
  // the near ones (|x| up to the fleet extent) are not.
  options.window_hi = 4096;
  options.require_finite = false;
  const CrEvalResult result = measure_cr(fleet, 1, options);
  EXPECT_TRUE(std::isfinite(result.cr));
  EXPECT_GT(result.cr, 1.0L);
  // The skipped probes are surfaced, not silently swallowed.
  EXPECT_GT(result.undetected_probes, 0);
}

TEST(MeasureCr, FullyUndetectedSideReportsInfinity) {
  // Regression: a fleet that never searches the negative half-line used
  // to report cr_negative == 0 (and, if the positive side were also
  // uncovered, cr == 0 / argmax == 0) with require_finite == false — a
  // silently optimistic answer for a target that is NEVER found.  The
  // honest supremum of that side is infinity.
  const Fleet rightward{{Trajectory({{0, 0}, {100, 100}}),
                         Trajectory({{0, 0}, {100, 100}})}};
  CrEvalOptions options;
  options.window_hi = 32;
  options.require_finite = false;
  const CrEvalResult result = measure_cr(rightward, 0, options);
  EXPECT_TRUE(std::isinf(result.cr_negative));
  EXPECT_TRUE(std::isinf(result.cr));
  EXPECT_LT(result.argmax, 0.0L);  // attained on the uncovered side
  EXPECT_GT(result.undetected_probes, 0);
  // The covered side is still measured normally.
  EXPECT_TRUE(std::isfinite(result.cr_positive));
  EXPECT_GE(result.cr_positive, 1.0L);
}

TEST(MeasureCr, GuardsWindow) {
  const TwoGroupSplit split(4, 1);
  const Fleet fleet = split.build_fleet(100);
  EXPECT_THROW((void)measure_cr(fleet, 1, {.window_lo = 0}),
               PreconditionError);
  EXPECT_THROW(
      (void)measure_cr(fleet, 1, {.window_lo = 5, .window_hi = 2}),
      PreconditionError);
  EXPECT_THROW((void)measure_cr(fleet, -1), PreconditionError);
}

TEST(MeasureCr, ProbeCountGrowsWithInteriorSamples) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(500);
  CrEvalOptions sparse;
  sparse.window_hi = 30;
  sparse.interior_samples = 0;
  CrEvalOptions dense = sparse;
  dense.interior_samples = 10;
  EXPECT_GT(measure_cr(fleet, 1, dense).probes,
            measure_cr(fleet, 1, sparse).probes);
}

TEST(KProfile, MatchesDetectionTimes) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(300);
  const std::vector<Real> xs{1.5L, -2.0L, 10.0L};
  const std::vector<Real> profile = k_profile(fleet, 1, xs);
  ASSERT_EQ(profile.size(), 3u);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(profile[i]),
                static_cast<double>(fleet.detection_time(xs[i], 1) /
                                    std::fabs(xs[i])),
                1e-15);
  }
}

TEST(KProfile, RejectsZeroPosition) {
  const TwoGroupSplit split(4, 1);
  const Fleet fleet = split.build_fleet(10);
  EXPECT_THROW((void)k_profile(fleet, 1, {0.0L}), PreconditionError);
}

TEST(KProfile, Lemma3ShapeDecreasingBetweenTurns) {
  // Between two consecutive turning magnitudes K is decreasing (Lemma 3).
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(500);
  const std::vector<Real> turns = fleet.turning_positions(+1);
  ASSERT_GE(turns.size(), 2u);
  // Pick the first two turning magnitudes above 1 and sample within.
  Real lo = 0, hi = 0;
  for (std::size_t i = 0; i + 1 < turns.size(); ++i) {
    if (turns[i] >= 1) {
      lo = turns[i];
      hi = turns[i + 1];
      break;
    }
  }
  ASSERT_GT(lo, 0.0L);
  std::vector<Real> xs;
  for (int s = 1; s <= 8; ++s) {
    xs.push_back(lo + (hi - lo) * static_cast<Real>(s) / 9);
  }
  const std::vector<Real> profile = k_profile(fleet, 1, xs);
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_LT(profile[i], profile[i - 1] + 1e-12L);
  }
}

TEST(ProbeMagnitudes, ExactCollisionsAreDeduplicated) {
  // Regression: engineer a fleet whose interior sample bit-collides with
  // a turning point's right-limit probe.  With turns at a = 1 and
  // b = 1 + 2*(fl(1*(1+eps)) - 1), one interior sample lands at
  // a + (b-a)/2 == fl(a*(1+eps)) exactly (all steps are exact in binary
  // arithmetic), which the pre-fix scan pushed twice.
  const Real a = 1;
  const Real just_past = a * (1 + tol::kLimitProbe);
  const Real b = a + 2 * (just_past - a);
  ASSERT_TRUE(value_identical(a + (b - a) / 2, just_past));

  TrajectoryBuilder builder;
  builder.start_at(0, 0);
  builder.move_to(a);   // turn at +1
  builder.move_to(-1);  // turn at -1
  builder.move_to(b);   // turn at +b (2e-9 above +1: outside approx-dedup)
  builder.move_to(-8);
  builder.move_to(8);   // final waypoint, not a turn
  const Fleet fleet(std::vector<Trajectory>{std::move(builder).build()});

  const CrEvalOptions options{
      .window_lo = 0.5L, .window_hi = 4, .interior_samples = 1};
  const std::vector<Real> probes =
      detail::probe_magnitudes(fleet, +1, options);
  int hits = 0;
  for (const Real probe : probes) {
    if (value_identical(probe, just_past)) ++hits;
  }
  EXPECT_EQ(hits, 1) << "right-limit probe duplicated";
  for (std::size_t i = 0; i < probes.size(); ++i) {
    for (std::size_t j = i + 1; j < probes.size(); ++j) {
      EXPECT_FALSE(value_identical(probes[i], probes[j]))
          << "duplicate probe " << static_cast<double>(probes[i]);
    }
  }
}

TEST(MeasureCr, ArgmaxTieBreakPrefersPositiveSide) {
  // Two exactly mirrored robots: T_1(x) == T_1(-x) bit for bit, so the
  // two half-lines tie on every probe.  The pinned rule says the positive
  // witness wins, regardless of side evaluation order.
  std::vector<Trajectory> robots;
  for (const int sign : {+1, -1}) {
    TrajectoryBuilder builder;
    builder.start_at(0, 0);
    Real turn = static_cast<Real>(sign);
    for (int i = 0; i < 8; ++i) {
      builder.move_to(turn);
      builder.move_to(-turn);
      turn *= 2;
    }
    robots.push_back(std::move(builder).build());
  }
  const Fleet fleet(std::move(robots));
  const CrEvalResult result = measure_cr(fleet, 0, {.window_hi = 16});
  ASSERT_TRUE(value_identical(result.cr_positive, result.cr_negative));
  EXPECT_GT(result.argmax, 0.0L);
  EXPECT_TRUE(value_identical(result.cr, result.cr_positive));
}

}  // namespace
}  // namespace linesearch

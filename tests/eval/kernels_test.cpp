// SoA kernel layer (eval/kernels, sim/visit_sweep, eval/interval_lines
// columns): bit-identity against the scalar reference paths, the probe
// dedup/window regressions, and the pinned order-statistic tie-breaks.
#include "eval/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "eval/cr_eval.hpp"
#include "eval/interval_lines.hpp"
#include "sim/analytic.hpp"
#include "sim/fleet.hpp"
#include "sim/trajectory.hpp"
#include "util/error.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace {

using verify::value_identical;

/// Sorted signed probe grid spanning both sides of the start position,
/// including 0 (every proportional robot's start) and far-out positions.
std::vector<Real> probe_grid(const Real hi) {
  std::vector<Real> xs;
  for (Real m = hi; m >= Real{0.25L}; m /= 2) xs.push_back(-m);
  xs.push_back(0);
  for (Real m = Real{0.25L}; m <= hi; m *= 2) xs.push_back(m);
  for (Real m = 1; m <= hi; m *= 3) xs.push_back(m * Real{1.00000000025L});
  std::sort(xs.begin(), xs.end());
  return xs;
}

void expect_batched_matches_scalar(const Fleet& fleet, const Real hi) {
  const std::vector<Real> xs = probe_grid(hi);
  std::vector<Real> batched(xs.size());
  for (RobotId id = 0; id < fleet.size(); ++id) {
    fleet.robot(id).first_visit_times_into(xs.data(), xs.size(),
                                           batched.data());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const std::optional<Real> scalar =
          fleet.robot(id).first_visit_time(xs[i]);
      const Real expected = scalar ? *scalar : kInfinity;
      EXPECT_TRUE(value_identical(batched[i], expected))
          << "robot " << id << " x=" << static_cast<double>(xs[i]);
    }
  }
}

TEST(VisitSweep, BatchedFirstVisitsMatchScalarOnDenseBackend) {
  expect_batched_matches_scalar(ProportionalAlgorithm(5, 2).build_fleet(64),
                                32);
}

TEST(VisitSweep, BatchedFirstVisitsMatchScalarOnAnalyticZigzag) {
  expect_batched_matches_scalar(
      ProportionalAlgorithm(5, 2).build_unbounded_fleet(), 32);
}

TEST(VisitSweep, BatchedFirstVisitsMatchScalarOnAnalyticRay) {
  std::vector<Trajectory> robots;
  robots.emplace_back(std::make_shared<AnalyticRay>(+1));
  robots.emplace_back(std::make_shared<AnalyticRay>(-1));
  expect_batched_matches_scalar(Fleet(std::move(robots)), 32);
}

TEST(VisitSweep, BatchedFirstVisitsMatchScalarOnNonConeFleet) {
  expect_batched_matches_scalar(
      ClassicCowPath(3, 1, /*mirrored=*/true).build_fleet(64), 32);
}

TEST(VisitSweep, UnreachedPositionsAreInfiniteOnBothPaths) {
  // Extent 4 leaves |x| > 4 unvisited: batched and scalar must agree on
  // exactly which probes are never visited.
  expect_batched_matches_scalar(ProportionalAlgorithm(3, 1).build_fleet(4),
                                32);
}

/// The emission pass of detail::probe_magnitudes, re-derived, with the
/// ORIGINAL quadratic first-occurrence dedup (std::find per candidate).
/// The production sorted-permutation dedup must keep the identical
/// probes in the identical order.
std::vector<Real> naive_probe_magnitudes(const Fleet& fleet, const int side,
                                         const CrEvalOptions& options) {
  std::vector<Real> turns = fleet.turning_positions_in(
      side, options.window_lo * (1 - tol::kRelative), options.window_hi);
  turns.push_back(options.window_lo);
  turns.push_back(options.window_hi);
  std::sort(turns.begin(), turns.end());
  turns.erase(std::unique(turns.begin(), turns.end(),
                          [](const Real a, const Real b) {
                            return approx_equal(a, b);
                          }),
              turns.end());
  std::vector<Real> probes;
  const auto push_unique = [&](const Real magnitude) {
    if (magnitude < options.window_lo || magnitude > options.window_hi) {
      return;
    }
    if (std::find(probes.begin(), probes.end(), magnitude) == probes.end()) {
      probes.push_back(magnitude);
    }
  };
  for (std::size_t i = 0; i < turns.size(); ++i) {
    push_unique(turns[i] * (1 + tol::kLimitProbe));
    push_unique(turns[i]);
    if (i + 1 < turns.size() && options.interior_samples > 0) {
      const int k = options.interior_samples;
      for (int s = 1; s <= k; ++s) {
        push_unique(turns[i] + (turns[i + 1] - turns[i]) *
                                   static_cast<Real>(s) /
                                   static_cast<Real>(k + 1));
      }
    }
  }
  return probes;
}

TEST(ProbeBatch, DedupMatchesQuadraticReferenceOnLargeTurnGrid) {
  // A(9, 4) out to 4096 puts hundreds of turning points (plus their
  // right-limits and interior samples) in the window — large enough that
  // an order-scrambling or duplicate-leaking dedup cannot hide.
  const Fleet fleet = ProportionalAlgorithm(9, 4).build_fleet(4096);
  CrEvalOptions options;
  options.window_hi = 1024;
  for (const int side : {+1, -1}) {
    const std::vector<Real> fast =
        detail::probe_magnitudes(fleet, side, options);
    const std::vector<Real> reference =
        naive_probe_magnitudes(fleet, side, options);
    ASSERT_GT(fast.size(), 50u);
    ASSERT_EQ(fast.size(), reference.size()) << "side " << side;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_TRUE(value_identical(fast[i], reference[i]))
          << "side " << side << " probe " << i;
    }
    // And no exact duplicate survives.
    std::vector<Real> sorted = fast;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
              sorted.end());
  }
}

TEST(ProbeBatch, SlackBandTurnNeverEmitsProbesBelowWindowLo) {
  // A turning point engineered just inside the window_lo * (1 -
  // kRelative) slack band: its right-limit lands inside the window (and
  // must be probed), but the turn itself and any interior sample toward
  // it sit strictly below window_lo and must be clamped out.
  const Real slack_turn = 1 - tol::kRelative / 4;
  TrajectoryBuilder builder;
  builder.start_at(0, 0);
  builder.move_to(slack_turn);
  builder.move_to(-40);
  builder.move_to(40);
  std::vector<Trajectory> robots;
  robots.push_back(std::move(builder).build());
  const Fleet fleet(std::move(robots));

  CrEvalOptions options;
  options.window_lo = 1;
  options.window_hi = 16;
  const std::vector<Real> probes =
      detail::probe_magnitudes(fleet, +1, options);
  ASSERT_FALSE(probes.empty());
  for (const Real magnitude : probes) {
    EXPECT_GE(magnitude, options.window_lo);
    EXPECT_LE(magnitude, options.window_hi);
  }
  // The slack band exists so this right-limit is probed.
  const Real limit = slack_turn * (1 + tol::kLimitProbe);
  ASSERT_GT(limit, options.window_lo);
  EXPECT_NE(std::find(probes.begin(), probes.end(), limit), probes.end());
}

TEST(ProbeBatch, ConcatenatesSidesInEmissionOrder) {
  const Fleet fleet = ProportionalAlgorithm(5, 2).build_fleet(64);
  CrEvalOptions options;
  options.window_hi = 16;
  const kernels::ProbeBatch batch =
      kernels::build_probe_batch(fleet, options);
  const std::vector<Real> positive =
      detail::probe_magnitudes(fleet, +1, options);
  const std::vector<Real> negative =
      detail::probe_magnitudes(fleet, -1, options);
  ASSERT_EQ(batch.size(), positive.size() + negative.size());
  ASSERT_EQ(batch.positive_count, positive.size());
  for (std::size_t i = 0; i < positive.size(); ++i) {
    EXPECT_TRUE(value_identical(batch.magnitudes[i], positive[i]));
    EXPECT_EQ(batch.sides[i], 1);
  }
  for (std::size_t i = 0; i < negative.size(); ++i) {
    EXPECT_TRUE(
        value_identical(batch.magnitudes[batch.positive_count + i],
                        negative[i]));
    EXPECT_EQ(batch.sides[batch.positive_count + i], -1);
  }
}

TEST(VisitColumns, DetectionMatchesFleetQueriesProbeByProbe) {
  for (const bool analytic : {false, true}) {
    const ProportionalAlgorithm algo(5, 2);
    const Fleet fleet =
        analytic ? algo.build_unbounded_fleet() : algo.build_fleet(64);
    CrEvalOptions options;
    options.window_hi = 16;
    const kernels::ProbeBatch batch =
        kernels::build_probe_batch(fleet, options);
    kernels::VisitColumns columns;
    for (const int f : {0, 2, 4}) {
      kernels::fill_visit_columns(fleet, f, batch, columns);
      ASSERT_EQ(columns.detection.size(), batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const Real x =
            static_cast<Real>(batch.sides[i]) * batch.magnitudes[i];
        EXPECT_TRUE(value_identical(columns.detection[i],
                                    fleet.detection_time(x, f)))
            << (analytic ? "analytic" : "dense") << " f=" << f
            << " probe " << i;
      }
    }
  }
}

TEST(VisitColumns, FaultBudgetBeyondFleetSizeIsAllUndetected) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_fleet(64);
  const kernels::ProbeBatch batch = kernels::build_probe_batch(fleet, {});
  kernels::VisitColumns columns;
  kernels::fill_visit_columns(fleet, 3, batch, columns);
  for (const Real time : columns.detection) {
    EXPECT_TRUE(std::isinf(time));
  }
}

/// All 41 (n, f) pairs with 1 <= f < n < 2f + 2 and n <= 12 — the
/// paper's whole regime at test scale.
std::vector<std::pair<int, int>> regime_pairs() {
  std::vector<std::pair<int, int>> pairs;
  for (int f = 1; f <= 11; ++f) {
    for (int n = f + 1; n < 2 * f + 2 && n <= 12; ++n) {
      pairs.push_back({n, f});
    }
  }
  return pairs;
}

TEST(MeasureCrKernel, BitIdenticalToScalarAcrossAllRegimePairs) {
  const std::vector<std::pair<int, int>> pairs = regime_pairs();
  ASSERT_EQ(pairs.size(), 41u);
  CrEvalOptions options;
  options.window_hi = 16;
  for (const auto& pair : pairs) {
    const int n = pair.first;
    const int f = pair.second;
    const Fleet fleet = ProportionalAlgorithm(n, f).build_fleet(64);
    const CrEvalResult kernel =
        kernels::measure_cr_kernel(fleet, f, options);
    const CrEvalResult scalar = detail::measure_cr_with(
        fleet, f, options,
        [&fleet, f](const Real x) { return fleet.detection_time(x, f); });
    EXPECT_TRUE(value_identical(kernel.cr, scalar.cr)) << n << "," << f;
    EXPECT_TRUE(value_identical(kernel.argmax, scalar.argmax))
        << n << "," << f;
    EXPECT_TRUE(value_identical(kernel.cr_positive, scalar.cr_positive))
        << n << "," << f;
    EXPECT_TRUE(value_identical(kernel.cr_negative, scalar.cr_negative))
        << n << "," << f;
    EXPECT_EQ(kernel.probes, scalar.probes) << n << "," << f;
    EXPECT_EQ(kernel.undetected_probes, scalar.undetected_probes)
        << n << "," << f;
  }
}

TEST(MeasureCrKernel, BitIdenticalToScalarOnAnalyticBackend) {
  CrEvalOptions options;
  options.window_hi = 64;
  for (const auto& pair :
       std::vector<std::pair<int, int>>{{3, 1}, {7, 4}, {12, 11}}) {
    const int n = pair.first;
    const int f = pair.second;
    const Fleet fleet = ProportionalAlgorithm(n, f).build_unbounded_fleet();
    const CrEvalResult kernel =
        kernels::measure_cr_kernel(fleet, f, options);
    const CrEvalResult scalar = detail::measure_cr_with(
        fleet, f, options,
        [&fleet, f](const Real x) { return fleet.detection_time(x, f); });
    EXPECT_TRUE(value_identical(kernel.cr, scalar.cr)) << n << "," << f;
    EXPECT_TRUE(value_identical(kernel.argmax, scalar.argmax))
        << n << "," << f;
    EXPECT_EQ(kernel.probes, scalar.probes) << n << "," << f;
  }
}

TEST(MeasureCrKernel, MeasureCrDelegatesToTheKernelPath) {
  const Fleet fleet = ProportionalAlgorithm(5, 2).build_fleet(64);
  CrEvalOptions options;
  options.window_hi = 16;
  const CrEvalResult via_facade = measure_cr(fleet, 2, options);
  const CrEvalResult via_kernel =
      kernels::measure_cr_kernel(fleet, 2, options);
  EXPECT_TRUE(value_identical(via_facade.cr, via_kernel.cr));
  EXPECT_TRUE(value_identical(via_facade.argmax, via_kernel.argmax));
  EXPECT_EQ(via_facade.probes, via_kernel.probes);
}

TEST(MeasureCrKernel, UndetectedProbeThrowsLikeTheScalarScan) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_fleet(4);
  CrEvalOptions options;
  options.window_hi = 4096;  // far beyond the fleet's reach
  EXPECT_THROW((void)kernels::measure_cr_kernel(fleet, 1, options),
               NumericError);
  options.require_finite = false;
  const CrEvalResult relaxed = kernels::measure_cr_kernel(fleet, 1, options);
  EXPECT_GT(relaxed.undetected_probes, 0);
}

TEST(OrderStatisticLine, TieBreakIsLowestIndexAmongAttainers) {
  // Four lines, three of which share the bit-identical value at x = 3
  // (indices 1, 2, 3); index 0 is strictly cheaper.  For k = 1 the
  // statistic is the shared value and the PINNED winner is index 1.
  std::vector<detail::VisitLine> lines(4);
  lines[0] = {true, 2, 1, Real{0.5L}};
  lines[1] = {true, 2, 5, 1};
  lines[2] = {true, 2, 5, 1};
  lines[3] = {true, 2, 5, 1};
  EXPECT_EQ(detail::order_statistic_line(lines, 3, 1), 1u);
  EXPECT_EQ(detail::order_statistic_line(lines, 3, 2), 1u);
  EXPECT_EQ(detail::order_statistic_line(lines, 3, 3), 1u);
  EXPECT_EQ(detail::order_statistic_line(lines, 3, 0), 0u);

  // The SoA columns must pin the same winner.
  detail::LineColumns columns;
  for (const detail::VisitLine& line : lines) {
    columns.finite.push_back(line.finite ? 1 : 0);
    columns.anchor.push_back(line.anchor);
    columns.value.push_back(line.value);
    columns.slope.push_back(line.slope);
  }
  EXPECT_EQ(detail::order_statistic_line(columns, 3, 1), 1u);
  EXPECT_EQ(detail::order_statistic_line(columns, 3, 2), 1u);
  EXPECT_EQ(detail::order_statistic_line(columns, 3, 3), 1u);
  EXPECT_EQ(detail::order_statistic_line(columns, 3, 0), 0u);
}

TEST(LineCrossings, SortedAscendingWithExactDuplicatesRemoved) {
  // Two distinct line PAIRS crossing at the bit-identical abscissa x = 2
  // (a symmetric-fleet situation), plus one pair crossing at x = 3.
  std::vector<detail::VisitLine> lines(4);
  lines[0] = {true, 0, 0, 1};           // t = x
  lines[1] = {true, 0, 4, -1};          // t = 4 - x      (meets 0 at x=2)
  lines[2] = {true, 0, -2, 2};          // t = 2x - 2     (meets 1 at x=2)
  lines[3] = {true, 0, 9, -2};          // t = 9 - 2x     (meets 0 at x=3)
  const std::vector<Real> crossings = detail::line_crossings(lines, 0, 10);
  ASSERT_FALSE(crossings.empty());
  EXPECT_TRUE(std::is_sorted(crossings.begin(), crossings.end()));
  EXPECT_EQ(std::adjacent_find(crossings.begin(), crossings.end()),
            crossings.end());
  EXPECT_NE(std::find(crossings.begin(), crossings.end(), Real{2}),
            crossings.end());
  EXPECT_NE(std::find(crossings.begin(), crossings.end(), Real{3}),
            crossings.end());

  // SoA path reports the identical list.
  detail::LineColumns columns;
  for (const detail::VisitLine& line : lines) {
    columns.finite.push_back(line.finite ? 1 : 0);
    columns.anchor.push_back(line.anchor);
    columns.value.push_back(line.value);
    columns.slope.push_back(line.slope);
  }
  std::vector<Real> soa;
  detail::line_crossings_into(columns, 0, 10, soa);
  ASSERT_EQ(soa.size(), crossings.size());
  for (std::size_t i = 0; i < soa.size(); ++i) {
    EXPECT_TRUE(value_identical(soa[i], crossings[i]));
  }
}

TEST(LineColumns, EvaluationMatchesVisitLineAt) {
  const Fleet fleet = ProportionalAlgorithm(5, 2).build_fleet(64);
  const std::vector<Real> criticals =
      detail::critical_magnitudes(fleet, +1, 1, 16);
  ASSERT_GE(criticals.size(), 2u);
  detail::LineColumns columns;
  for (std::size_t i = 0; i + 1 < criticals.size(); ++i) {
    const Real a = criticals[i];
    const Real b = criticals[i + 1];
    const std::vector<detail::VisitLine> lines =
        detail::visit_lines(fleet, +1, a, b);
    detail::fill_line_columns(fleet, +1, a, b, columns);
    ASSERT_EQ(columns.size(), lines.size());
    const Real x = a + (b - a) / 3;
    detail::evaluate_lines(columns, x);
    for (std::size_t r = 0; r < lines.size(); ++r) {
      EXPECT_TRUE(value_identical(columns.at[r], lines[r].at(x)))
          << "interval " << i << " robot " << r;
      EXPECT_EQ(columns.finite[r] != 0, lines[r].finite);
    }
    for (const std::size_t k : {std::size_t{0}, std::size_t{2}}) {
      EXPECT_TRUE(value_identical(
          detail::order_statistic_at(columns, x, k),
          detail::order_statistic_at(lines, x, k)));
      EXPECT_EQ(detail::order_statistic_line(columns, x, k),
                detail::order_statistic_line(lines, x, k));
    }
  }
}

TEST(Kernels, SimdCompiledReflectsTheBuildFlag) {
#if defined(LINESEARCH_SIMD_ENABLED) && LINESEARCH_SIMD_ENABLED
  EXPECT_TRUE(kernels::simd_compiled());
#else
  EXPECT_FALSE(kernels::simd_compiled());
#endif
}

}  // namespace
}  // namespace linesearch

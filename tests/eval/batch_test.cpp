// Tests for eval/batch.hpp and eval/visit_cache.hpp — the parallel
// batched CR engine.  The load-bearing property is DETERMINISM: any
// thread count must reproduce the serial path bit-for-bit.
#include "eval/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "eval/visit_cache.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace linesearch {
namespace {

/// RAII guard that sets LINESEARCH_THREADS and restores it on exit.
class ThreadsEnvGuard {
 public:
  explicit ThreadsEnvGuard(const char* value) {
    const char* old = std::getenv("LINESEARCH_THREADS");
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    setenv("LINESEARCH_THREADS", value, 1);
  }
  ~ThreadsEnvGuard() {
    if (had_value_) {
      setenv("LINESEARCH_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("LINESEARCH_THREADS");
    }
  }

 private:
  std::string saved_;
  bool had_value_ = false;
};

/// Value-exact equality for Real: same value, same zero sign, NaN equals
/// NaN.  (A raw memcmp would compare the x87 long double's padding
/// bytes, which are indeterminate.)
bool bit_identical(const Real a, const Real b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return a == b && std::signbit(a) == std::signbit(b);
}

std::vector<CrBatchJob> table1_style_jobs(const Fleet& fleet, const int n) {
  std::vector<CrBatchJob> jobs;
  for (int f = 0; f < n; ++f) {
    jobs.push_back({&fleet, f, {.window_hi = 24}});
  }
  return jobs;
}

TEST(MeasureCrBatch, MatchesSerialMeasureCrExactly) {
  const ProportionalAlgorithm algo(5, 3);
  const Fleet fleet = algo.build_fleet(1000);
  const std::vector<CrBatchJob> jobs = table1_style_jobs(fleet, 5);

  const std::vector<CrEvalResult> batched =
      measure_cr_batch(jobs, {.threads = 8});
  ASSERT_EQ(batched.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const CrEvalResult serial =
        measure_cr(*jobs[i].fleet, jobs[i].f, jobs[i].options);
    EXPECT_TRUE(bit_identical(batched[i].cr, serial.cr)) << "job " << i;
    EXPECT_TRUE(bit_identical(batched[i].argmax, serial.argmax))
        << "job " << i;
    EXPECT_EQ(batched[i].probes, serial.probes);
    EXPECT_EQ(batched[i].undetected_probes, serial.undetected_probes);
  }
}

TEST(MeasureCrBatch, EnvThreadCountsAreBitIdentical) {
  // The ISSUE-mandated determinism check: LINESEARCH_THREADS=1 and =8
  // produce bit-identical cr / argmax for the whole batch.
  const ProportionalAlgorithm algo(7, 4);
  const Fleet fleet = algo.build_fleet(800);
  const std::vector<CrBatchJob> jobs = table1_style_jobs(fleet, 7);

  std::vector<CrEvalResult> one;
  {
    const ThreadsEnvGuard env("1");
    one = measure_cr_batch(jobs);  // threads = 0 -> env
  }
  std::vector<CrEvalResult> eight;
  {
    const ThreadsEnvGuard env("8");
    eight = measure_cr_batch(jobs);
  }
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_TRUE(bit_identical(one[i].cr, eight[i].cr)) << "job " << i;
    EXPECT_TRUE(bit_identical(one[i].argmax, eight[i].argmax))
        << "job " << i;
  }
}

TEST(MeasureCrBatch, CacheOnAndOffAgreeBitwise) {
  const ProportionalAlgorithm algo(5, 2);
  const Fleet fleet = algo.build_fleet(600);
  const std::vector<CrBatchJob> jobs = table1_style_jobs(fleet, 5);
  const std::vector<CrEvalResult> cached =
      measure_cr_batch(jobs, {.threads = 4, .use_cache = true});
  const std::vector<CrEvalResult> uncached =
      measure_cr_batch(jobs, {.threads = 4, .use_cache = false});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(bit_identical(cached[i].cr, uncached[i].cr)) << i;
    EXPECT_TRUE(bit_identical(cached[i].argmax, uncached[i].argmax)) << i;
  }
}

TEST(MeasureCrBatch, FaultBudgetConvenienceOverload) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(500);
  const std::vector<CrEvalResult> results =
      measure_cr_batch(fleet, {0, 1, 2}, {.window_hi = 16});
  ASSERT_EQ(results.size(), 3u);
  // More faults -> larger measured CR (order statistic grows with f).
  EXPECT_LE(results[0].cr, results[1].cr);
  EXPECT_LE(results[1].cr, results[2].cr);
}

TEST(MeasureCrBatch, RejectsNullFleet) {
  EXPECT_THROW((void)measure_cr_batch({CrBatchJob{}}), PreconditionError);
}

TEST(MeasureCrBatch, PropagatesUndetectedErrors) {
  // require_finite jobs throw through the parallel loop like the serial
  // path does.
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(4);
  const std::vector<CrBatchJob> jobs{
      {&fleet, 1, {.window_hi = 4096, .require_finite = true}}};
  EXPECT_THROW((void)measure_cr_batch(jobs, {.threads = 4}), NumericError);
}

TEST(KProfileBatch, MatchesSerialKProfile) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(400);
  std::vector<Real> positions;
  for (int i = 1; i <= 200; ++i) {
    positions.push_back(0.25L * static_cast<Real>(i) *
                        (i % 2 == 0 ? 1 : -1));
  }
  const std::vector<Real> serial = k_profile(fleet, 1, positions);
  const std::vector<Real> batched =
      k_profile_batch(fleet, 1, positions, {.threads = 8});
  ASSERT_EQ(serial.size(), batched.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(bit_identical(serial[i], batched[i])) << "position " << i;
  }
}

TEST(VisitCache, MatchesUncachedDetectionBitwise) {
  const ProportionalAlgorithm algo(5, 3);
  const Fleet fleet = algo.build_fleet(300);
  const FleetVisitCache cache(fleet);
  for (const Real x : {1.0L, -2.5L, 17.0L, -63.0L, 1.0000000001L}) {
    for (int f = 0; f < 5; ++f) {
      const Real expected = fleet.detection_time(x, f);
      const Real first = cache.detection_time(x, f);   // cold
      const Real second = cache.detection_time(x, f);  // memoized
      EXPECT_TRUE(bit_identical(expected, first));
      EXPECT_TRUE(bit_identical(first, second));
    }
  }
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

TEST(VisitCache, WarmPhasePopulatesEntries) {
  const GroupDoubling pack(2, 1);
  const Fleet fleet = pack.build_fleet(200);
  const FleetVisitCache cache(fleet);
  cache.warm({1.0L, 2.0L, 3.0L});
  const std::size_t misses_after_warm = cache.misses();
  (void)cache.detection_time(2.0L, 0);
  EXPECT_EQ(cache.misses(), misses_after_warm);  // pure hits
  EXPECT_GE(cache.hits(), fleet.size());
}

TEST(VisitCache, ConcurrentReadersAreRaceFreeAndConsistent) {
  // TSAN-facing stress test: 8 threads hammer one shared cache over an
  // overlapping probe set (every value is recomputed-or-memoized under
  // the striped locks).  Run under -fsanitize=thread in the CI tsan job.
  const ProportionalAlgorithm algo(5, 3);
  const Fleet fleet = algo.build_fleet(500);
  const FleetVisitCache cache(fleet);

  std::vector<Real> positions;
  for (int i = 1; i <= 400; ++i) {
    positions.push_back(1 + 0.11L * static_cast<Real>(i % 97));
    positions.push_back(-(1 + 0.07L * static_cast<Real>(i % 89)));
  }

  std::vector<std::vector<Real>> per_thread(8);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < per_thread.size(); ++t) {
    workers.emplace_back([&cache, &positions, &per_thread, t] {
      std::vector<Real>& mine = per_thread[t];
      mine.reserve(positions.size());
      for (const Real x : positions) {
        mine.push_back(cache.detection_time(x, 3));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Real expected = fleet.detection_time(positions[i], 3);
    for (const std::vector<Real>& mine : per_thread) {
      ASSERT_TRUE(bit_identical(mine[i], expected)) << "position " << i;
    }
  }
}

TEST(VisitCache, QuantizationCollisionBypassesTheCache) {
  // Two positions distinct as long doubles but IDENTICAL once quantized
  // to double (2^-60 is below double's 52-bit mantissa at magnitude 1):
  // the cache must detect the key collision and fall back to the exact
  // query, bit-identical to the uncached path, in both query orders.
  const Fleet fleet = ProportionalAlgorithm(5, 2).build_fleet(64);
  const Real x1 = 1.0L;
  const Real x2 = 1.0L + ldexpl(1.0L, -60);
  ASSERT_NE(x1, x2);
  ASSERT_EQ(static_cast<double>(x1), static_cast<double>(x2));

  const FleetVisitCache cache(fleet);
  for (int round = 0; round < 2; ++round) {  // cold, then warm
    for (int f = 0; f < 5; ++f) {
      ASSERT_TRUE(bit_identical(cache.detection_time(x1, f),
                                fleet.detection_time(x1, f)))
          << "round " << round << " f " << f;
      ASSERT_TRUE(bit_identical(cache.detection_time(x2, f),
                                fleet.detection_time(x2, f)))
          << "round " << round << " f " << f;
    }
    for (RobotId id = 0; id < fleet.size(); ++id) {
      const std::vector<Real> direct1 = fleet.first_visit_times(x1);
      const std::vector<Real> direct2 = fleet.first_visit_times(x2);
      ASSERT_TRUE(bit_identical(cache.first_visit(id, x1), direct1[id]));
      ASSERT_TRUE(bit_identical(cache.first_visit(id, x2), direct2[id]));
    }
  }
  // At least one miss per distinct exact position: the collision cannot
  // have served x2 from x1's entry.
  EXPECT_GE(cache.misses(), 2u);
}

TEST(MeasureCrBatch, EmptyJobListYieldsEmptyResults) {
  EXPECT_TRUE(measure_cr_batch({}).empty());
  EXPECT_TRUE(measure_cr_batch({}, {.threads = 8}).empty());
  EXPECT_TRUE(measure_cr_batch({}, {.threads = 8, .use_cache = false}).empty());
}

TEST(MeasureCrBatch, MoreThreadsThanJobsStaysBitIdentical) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_fleet(64);
  std::vector<CrBatchJob> jobs = {{&fleet, 0, {.window_hi = 16}},
                                  {&fleet, 1, {.window_hi = 16}}};
  const std::vector<CrEvalResult> serial =
      measure_cr_batch(jobs, {.threads = 1});
  for (const int threads : {4, 16, 64}) {
    const std::vector<CrEvalResult> parallel =
        measure_cr_batch(jobs, {.threads = threads});
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(bit_identical(parallel[i].cr, serial[i].cr));
      EXPECT_TRUE(bit_identical(parallel[i].argmax, serial[i].argmax));
      EXPECT_EQ(parallel[i].probes, serial[i].probes);
    }
  }
}

TEST(KProfileBatch, EmptyPositionsYieldEmptyProfile) {
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_fleet(64);
  EXPECT_TRUE(k_profile_batch(fleet, 1, {}).empty());
  EXPECT_TRUE(k_profile_batch(fleet, 1, {}, {.threads = 8}).empty());
}

TEST(VisitCache, RobotsSharingABackendShareMemoSlots) {
  // GroupDoubling's analytic build hands ONE AnalyticZigzag object to all
  // n robots, so the cache collapses them to a single memo slot: the
  // first robot's miss is every other robot's hit.
  const GroupDoubling pack(4, 1);
  const Fleet analytic = pack.build_unbounded_fleet();
  const FleetVisitCache cache(analytic);
  EXPECT_EQ(cache.slot_count(), 1u);
  (void)cache.detection_time(3.0L, 1);
  EXPECT_EQ(cache.misses(), 1u);                      // robot 0 computed...
  EXPECT_EQ(cache.hits(), analytic.size() - 1);       // ...the rest reused
  const Real direct = analytic.detection_time(3.0L, 1);
  EXPECT_TRUE(bit_identical(direct, cache.detection_time(3.0L, 1)));

  // Dense builds materialize per-robot copies: one slot per robot.
  const Fleet dense = pack.build_fleet(200);
  EXPECT_EQ(FleetVisitCache(dense).slot_count(), dense.size());
}

}  // namespace
}  // namespace linesearch

// Tests for eval/randomized.hpp — randomized schedules and the classic
// Kao-Reif-Tate constant.
#include "eval/randomized.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/optimize.hpp"
#include "core/competitive.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

TEST(RandomizedSingle, MatchesClosedFormExpectation) {
  // For the randomly-scaled cone zig-zag with expansion factor kappa,
  // E[T(x)]/x = 1 + (kappa+1)/ln(kappa) at every phase (the schedule
  // phase is uniformized by the scaling).  Midpoint quadrature with m
  // offsets has O(1/m^2) error.
  for (const Real kappa : {2.0L, 3.0L, 3.6L, 5.0L}) {
    RandomizedOptions options;
    options.offset_samples = 256;
    options.phase_samples = 16;
    const RandomizedResult result = randomized_single_cr(kappa, options);
    const Real expected = 1 + (kappa + 1) / std::log(kappa);
    // The m-point offset lattice inherits a worst-phase bias of up to a
    // factor kappa^(2/m) (the lattice average of kappa^(g mod 2) depends
    // on the phase remainder); tolerate exactly that plus quadrature
    // noise.
    const Real tolerance =
        expected * (std::pow(kappa, Real{2} / 256) - 1) + 3e-3L;
    EXPECT_NEAR(static_cast<double>(result.expected_cr),
                static_cast<double>(expected),
                static_cast<double>(tolerance))
        << "kappa=" << static_cast<double>(kappa);
  }
}

TEST(RandomizedSingle, DeterministicContrastIsTheCowPathFormula) {
  // The U = 0 schedule's worst probed ratio approaches the deterministic
  // 1 + 2 kappa^2/(kappa - 1) (equal to 9 at kappa = 2).
  RandomizedOptions options;
  options.offset_samples = 8;
  options.phase_samples = 128;
  const RandomizedResult result = randomized_single_cr(2.0L, options);
  EXPECT_NEAR(static_cast<double>(result.deterministic), 9.0, 0.1);
}

TEST(RandomizedSingle, KaoReifTateOptimum) {
  // Minimizing the expected CR over kappa reproduces the classic
  // randomized-search constant ~4.5911 at kappa ~ 3.5911.
  RandomizedOptions options;
  options.offset_samples = 512;
  options.phase_samples = 16;
  // The phase-averaged estimator: the theoretical expectation is
  // phase-independent, and averaging suppresses the offset-lattice bias
  // that tilts the sup-over-phase estimator.
  const MinimizeResult best = golden_section(
      [&](const Real kappa) {
        return randomized_single_cr(kappa, options).mean_expected_cr;
      },
      2.0L, 6.0L, {.tolerance = 1e-6L, .max_iterations = 60});
  EXPECT_NEAR(static_cast<double>(best.x), 3.5911, 0.12);
  EXPECT_NEAR(static_cast<double>(best.fx), 4.5911, 0.02);
}

TEST(RandomizedSingle, RandomizationBeatsDeterminismForEveryKappa) {
  for (const Real kappa : {2.0L, 3.0L, 4.0L}) {
    RandomizedOptions options;
    options.offset_samples = 64;
    options.phase_samples = 32;
    const RandomizedResult result = randomized_single_cr(kappa, options);
    EXPECT_LT(result.expected_cr, result.deterministic)
        << static_cast<double>(kappa);
  }
}

TEST(RandomizedProportional, BeatsTheorem1InExpectation) {
  // Scaling A(n, f) by r^U drops the worst-case expectation strictly
  // below the deterministic competitive ratio.
  for (const auto& [n, f] :
       std::vector<std::pair<int, int>>{{3, 1}, {5, 3}}) {
    RandomizedOptions options;
    options.offset_samples = 64;
    options.phase_samples = 24;
    const RandomizedResult result =
        randomized_proportional_cr(n, f, options);
    EXPECT_LT(result.expected_cr, algorithm_cr(n, f) * 0.95L)
        << n << "," << f;
    EXPECT_GT(result.expected_cr, 1.0L);
    // The deterministic realization's probed worst ratio approaches
    // Theorem 1 from below (the sup is a right-limit the phase grid
    // cannot sit on exactly).
    EXPECT_GT(result.deterministic, algorithm_cr(n, f) * 0.97L);
    EXPECT_LE(result.deterministic, algorithm_cr(n, f) * (1 + 1e-9L));
  }
}

TEST(Randomized, Guards) {
  EXPECT_THROW((void)randomized_single_cr(1.0L), PreconditionError);
  RandomizedOptions bad;
  bad.offset_samples = 1;
  EXPECT_THROW((void)randomized_single_cr(2, bad), PreconditionError);
  EXPECT_THROW((void)randomized_proportional_cr(4, 1), PreconditionError);
}

}  // namespace
}  // namespace linesearch

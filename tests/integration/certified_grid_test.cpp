// Grid-wide property suites for the exact tooling: the certified
// evaluator, the exact profiles, the runtime and serialization, each
// swept across every (n, f) pair of the proportional regime.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "eval/exact.hpp"
#include "eval/profile.hpp"
#include "eval/validation.hpp"
#include "runtime/world.hpp"
#include "sim/serialize.hpp"

namespace linesearch {
namespace {

class ExactToolingGrid
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ExactToolingGrid, CertifiedCrMatchesTheoremAtMachinePrecision) {
  const auto [n, f] = GetParam();
  const ProportionalAlgorithm algo(n, f);
  const Fleet fleet = algo.build_fleet(500);
  const Real exact = certified_cr(fleet, f, {.window_hi = 10}).cr;
  const Real theory = algorithm_cr(n, f);
  EXPECT_LT(std::fabs(exact - theory) / theory, 1e-14L)
      << static_cast<double>(exact) << " vs "
      << static_cast<double>(theory);
}

TEST_P(ExactToolingGrid, ProfilesAreExactOnBothSides) {
  const auto [n, f] = GetParam();
  const ProportionalAlgorithm algo(n, f);
  const Fleet fleet = algo.build_fleet(500);
  for (const int side : {+1, -1}) {
    const std::vector<ProfilePiece> pieces =
        detection_profile(fleet, f, side, {.window_hi = 10});
    ASSERT_FALSE(pieces.empty()) << side;
    EXPECT_LT(profile_max_error(fleet, f, pieces, 5), 1e-12L) << side;
  }
}

TEST_P(ExactToolingGrid, ProfileSupEqualsCertifiedSup) {
  const auto [n, f] = GetParam();
  const ProportionalAlgorithm algo(n, f);
  const Fleet fleet = algo.build_fleet(500);
  Real sup = 0;
  for (const int side : {+1, -1}) {
    for (const ProfilePiece& piece :
         detection_profile(fleet, f, side, {.window_hi = 10})) {
      // K = T/|x| is monotone on each piece: check both piece ends.
      sup = std::max(sup, piece.value_at_lo / std::fabs(piece.lo));
      sup = std::max(sup, piece.value_at_hi() / std::fabs(piece.hi));
    }
  }
  const Real certified = certified_cr(fleet, f, {.window_hi = 10}).cr;
  EXPECT_LT(std::fabs(sup - certified) / certified, 1e-14L);
}

TEST_P(ExactToolingGrid, OnlineControllersReproduceTheSchedule) {
  const auto [n, f] = GetParam();
  const Fleet online = run_proportional_controllers(n, f, 80);
  const Fleet offline = ProportionalAlgorithm(n, f).build_fleet(80);
  ASSERT_EQ(online.size(), offline.size());
  for (RobotId id = 0; id < online.size(); ++id) {
    const auto& a = online.robot(id).waypoints();
    const auto& b = offline.robot(id).waypoints();
    ASSERT_EQ(a.size(), b.size()) << id;
    for (std::size_t w = 0; w < a.size(); ++w) {
      EXPECT_NEAR(static_cast<double>(a[w].time),
                  static_cast<double>(b[w].time), 1e-12);
      EXPECT_NEAR(static_cast<double>(a[w].position),
                  static_cast<double>(b[w].position), 1e-12);
    }
  }
}

TEST_P(ExactToolingGrid, SerializationPreservesTheCertifiedCr) {
  const auto [n, f] = GetParam();
  const ProportionalAlgorithm algo(n, f);
  const Fleet fleet = algo.build_fleet(500);
  const Fleet parsed = fleet_from_csv(fleet_to_csv(fleet));
  EXPECT_EQ(certified_cr(fleet, f, {.window_hi = 10}).cr,
            certified_cr(parsed, f, {.window_hi = 10}).cr);
}

std::string grid_name(
    const ::testing::TestParamInfo<std::pair<int, int>>& info) {
  std::string name = "n";
  name += std::to_string(info.param.first);
  name += "_f";
  name += std::to_string(info.param.second);
  return name;
}

INSTANTIATE_TEST_SUITE_P(Regime, ExactToolingGrid,
                         ::testing::ValuesIn(proportional_regime_pairs(9)),
                         grid_name);

}  // namespace
}  // namespace linesearch

// Integration tests pinning the paper's published numbers end-to-end:
// Table 1 through the full strategy -> fleet -> measurement pipeline, and
// the Figure 5 curves against their closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "core/strategy.hpp"
#include "eval/cr_eval.hpp"
#include "eval/validation.hpp"

namespace linesearch {
namespace {

struct Table1Row {
  int n;
  int f;
  double cr;           // paper's "comp. ratio of A(n,f)"
  double lower_bound;  // paper's "lower bound on comp. ratio"
  double expansion;    // paper's "expansion factor of A(n,f)"; 0 = blank
};

// Table 1 of the paper, verbatim.
constexpr Table1Row kTable1[] = {
    {2, 1, 9.0, 9.0, 2.0},     {3, 1, 5.24, 3.76, 4.0},
    {3, 2, 9.0, 9.0, 2.0},     {4, 1, 1.0, 1.0, 0.0},
    {4, 2, 6.2, 3.649, 3.0},   {4, 3, 9.0, 9.0, 2.0},
    {5, 1, 1.0, 1.0, 0.0},     {5, 2, 4.43, 3.57, 6.0},
    {5, 3, 6.76, 3.57, 8.0 / 3}, {5, 4, 9.0, 9.0, 2.0},
    {11, 5, 3.73, 3.345, 12.0}, {41, 20, 3.24, 3.12, 42.0},
};

TEST(Table1, UpperBoundColumn) {
  for (const Table1Row& row : kTable1) {
    EXPECT_NEAR(static_cast<double>(best_known_cr(row.n, row.f)), row.cr,
                8e-3)
        << "n=" << row.n << " f=" << row.f;
  }
}

TEST(Table1, LowerBoundColumn) {
  // The paper prints rounded values; the exact Theorem-2 root may exceed
  // the printed one slightly (n = 41: exact 3.1357 vs printed 3.12), but
  // must never fall meaningfully below it.
  for (const Table1Row& row : kTable1) {
    const double ours = static_cast<double>(best_lower_bound(row.n, row.f));
    EXPECT_GE(ours, row.lower_bound - 6e-3)
        << "n=" << row.n << " f=" << row.f;
    EXPECT_LE(ours, row.lower_bound + 0.02)
        << "n=" << row.n << " f=" << row.f;
  }
}

TEST(Table1, ExpansionFactorColumn) {
  for (const Table1Row& row : kTable1) {
    if (row.expansion == 0.0) continue;  // blank cell (trivial regime)
    EXPECT_NEAR(static_cast<double>(optimal_expansion_factor(row.n, row.f)),
                row.expansion, 6e-3)
        << "n=" << row.n << " f=" << row.f;
  }
}

TEST(Table1, MeasuredPipelineReproducesUpperBoundColumn) {
  // The headline check: build each strategy, simulate, measure.  (The
  // (41,20) row is skipped here only for runtime; bench_table1 covers it.)
  for (const Table1Row& row : kTable1) {
    if (row.n > 11) continue;
    const ValidationRow v =
        validate_pair(row.n, row.f, {.window_hi = 24, .extent_factor = 32});
    EXPECT_NEAR(static_cast<double>(v.measured_cr), row.cr, 8e-3)
        << "n=" << row.n << " f=" << row.f;
  }
}

TEST(Figure5Left, CurveValuesAtPlotEndpoints) {
  // The plot runs n = 3..20 (odd n are the meaningful points).
  EXPECT_NEAR(static_cast<double>(cr_half_faulty(3)), 5.2333, 1e-3);
  // Large-n end approaches 3.
  EXPECT_LT(cr_half_faulty(19), 3.7L);
  EXPECT_GT(cr_half_faulty(19), 3.0L);
}

TEST(Figure5Right, CurveMatchesTheorem1Limits) {
  // At a = 1.5 the curve value equals lim algorithm_cr(3k, 2k).
  const Real curve = asymptotic_cr(1.5L);
  EXPECT_NEAR(static_cast<double>(algorithm_cr(6000, 4000)),
              static_cast<double>(curve), 5e-3);
}

TEST(Abstract, AsymptoticUpperAndLowerBoundsForHalfFaulty) {
  // CR(A(2f+1,f)) <= 3 + 4 ln n / n and LB >= 3 + 2 ln n / n (low-order
  // terms dropped) — the abstract's asymptotic claims, at n = 201.
  const int n = 201;
  EXPECT_LE(cr_half_faulty(n), corollary1_bound(n) + 0.01L);
  const Real lb = theorem2_alpha(n);
  EXPECT_GE(lb, corollary2_bound(n) - 1e-9L);
  EXPECT_LE(lb - 3, 2.5L * std::log(static_cast<Real>(n)) / n);
}

TEST(Abstract, OptimalityAtNEqualsFPlus1) {
  // "Our search algorithm is easily seen to be optimal for n = f+1":
  // upper bound meets lower bound at exactly 9.
  for (int f = 1; f <= 6; ++f) {
    EXPECT_EQ(best_lower_bound(f + 1, f), 9.0L);
    EXPECT_NEAR(static_cast<double>(algorithm_cr(f + 1, f)), 9.0, 1e-9);
  }
}

TEST(Section1, TrivialAlgorithmForLargeFleets) {
  // n >= 2f+2: competitive ratio one, achieved by the two-group split.
  const StrategyPtr strategy = make_optimal_strategy(8, 3);
  const Fleet fleet = strategy->build_fleet(100);
  const CrEvalResult result = measure_cr(fleet, 3, {.window_hi = 40});
  EXPECT_NEAR(static_cast<double>(result.cr), 1.0, 1e-9);
}

}  // namespace
}  // namespace linesearch

// Parameterized property suites sweeping the (n, f) grid and the beta
// family — the "for all" claims of the paper checked over many instances.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "core/proportional.hpp"
#include "core/strategy.hpp"
#include "eval/cr_eval.hpp"
#include "eval/validation.hpp"
#include "sim/zigzag.hpp"

namespace linesearch {
namespace {

// ---------------------------------------------------------------- grid --

class RegimePairProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RegimePairProperty, MeasuredCrMatchesTheorem1) {
  const auto [n, f] = GetParam();
  const ValidationRow row =
      validate_pair(n, f, {.window_hi = 16, .extent_factor = 24});
  EXPECT_LT(row.relative_gap, 1e-6L);
}

TEST_P(RegimePairProperty, MeasuredCrRespectsBothBounds) {
  const auto [n, f] = GetParam();
  const ValidationRow row =
      validate_pair(n, f, {.window_hi = 16, .extent_factor = 24});
  EXPECT_GE(row.measured_cr, row.lower_bound * (1 - 1e-9L));
  EXPECT_LE(row.measured_cr, row.theory_cr * (1 + 1e-9L));
}

TEST_P(RegimePairProperty, ScheduleInvariantsHold) {
  const auto [n, f] = GetParam();
  const ProportionalAlgorithm algo(n, f);
  const Fleet fleet = algo.build_fleet(60);
  EXPECT_TRUE(check_schedule(fleet, n, algo.beta(), 1).all_ok());
}

TEST_P(RegimePairProperty, InitialTurnsAreDistinctAndSmall) {
  const auto [n, f] = GetParam();
  const ProportionalAlgorithm algo(n, f);
  const ProportionalSchedule& s = algo.schedule();
  std::vector<Real> turns;
  for (int i = 0; i < n; ++i) turns.push_back(s.initial_turn(i));
  for (std::size_t i = 0; i < turns.size(); ++i) {
    EXPECT_LE(std::fabs(turns[i]), 1.0L);
    for (std::size_t j = i + 1; j < turns.size(); ++j) {
      EXPECT_FALSE(approx_equal(turns[i], turns[j]))
          << i << " vs " << j << ": robots share a turning point";
    }
  }
}

std::string pair_name(
    const ::testing::TestParamInfo<std::pair<int, int>>& info) {
  std::string name = "n";
  name += std::to_string(info.param.first);
  name += "_f";
  name += std::to_string(info.param.second);
  return name;
}

INSTANTIATE_TEST_SUITE_P(Grid, RegimePairProperty,
                         ::testing::ValuesIn(proportional_regime_pairs(8)),
                         pair_name);

// ---------------------------------------------------------- beta family --

class BetaFamilyProperty
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(BetaFamilyProperty, Lemma5HoldsForEveryBeta) {
  // For any beta (not only the optimal one) the measured CR of S_beta(n)
  // equals Lemma 5's closed form.
  const auto [n, f, beta_d] = GetParam();
  const Real beta = static_cast<Real>(beta_d);
  const ProportionalAlgorithm schedule(n, f, beta);
  const Fleet fleet = schedule.build_fleet(600);
  const CrEvalResult measured = measure_cr(fleet, f, {.window_hi = 10});
  EXPECT_NEAR(static_cast<double>(measured.cr),
              static_cast<double>(schedule_cr(n, f, beta)), 1e-5);
}

TEST_P(BetaFamilyProperty, OptimalBetaIsNoWorse) {
  const auto [n, f, beta_d] = GetParam();
  EXPECT_GE(schedule_cr(n, f, static_cast<Real>(beta_d)),
            algorithm_cr(n, f) - 1e-12L);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BetaFamilyProperty,
    ::testing::Values(std::make_tuple(3, 1, 1.3), std::make_tuple(3, 1, 2.0),
                      std::make_tuple(3, 1, 3.0), std::make_tuple(3, 2, 2.0),
                      std::make_tuple(3, 2, 4.0), std::make_tuple(5, 3, 1.8),
                      std::make_tuple(5, 3, 3.0), std::make_tuple(4, 2, 1.5),
                      std::make_tuple(4, 2, 2.5)));

// ------------------------------------------------------------- doubling --

class DoublingProperty : public ::testing::TestWithParam<int> {};

TEST_P(DoublingProperty, AFPlus1FIsAlwaysNine) {
  const int f = GetParam();
  EXPECT_NEAR(static_cast<double>(algorithm_cr(f + 1, f)), 9.0, 1e-10);
  EXPECT_NEAR(static_cast<double>(optimal_beta(f + 1, f)), 3.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(FSweep, DoublingProperty,
                         ::testing::Range(1, 12));

// --------------------------------------------------------- lower bounds --

class LowerBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(LowerBoundProperty, RootSolvesEquationExactly) {
  const int n = GetParam();
  const Real alpha = theorem2_alpha(n);
  EXPECT_NEAR(static_cast<double>(theorem2_residual(n, alpha)), 0.0, 1e-10);
}

TEST_P(LowerBoundProperty, SandwichedBetweenAsymptoteAndNine) {
  const int n = GetParam();
  const Real alpha = theorem2_alpha(n);
  EXPECT_GT(alpha, 3.0L);
  EXPECT_LE(alpha, 9.0L);
  if (n >= 10) {
    EXPECT_GE(alpha, corollary2_bound(n) - 1e-12L);
  }
}

INSTANTIATE_TEST_SUITE_P(NSweep, LowerBoundProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144));

// ----------------------------------------------------- zig-zag geometry --

class ZigZagProperty : public ::testing::TestWithParam<double> {};

TEST_P(ZigZagProperty, TurningPointsObeyLemma1ForAnyBeta) {
  const Real beta = static_cast<Real>(GetParam());
  const Real kappa = expansion_factor(beta);
  // Force at least ~5 legs even for very wide cones (large kappa).
  const Real coverage = 2 * kappa * kappa * kappa * kappa;
  const Trajectory t = make_cone_zigzag(
      {.beta = beta, .first_turn = 1, .min_coverage = coverage});
  const std::vector<Waypoint> turns = t.turning_waypoints();
  ASSERT_GE(turns.size(), 3u);
  for (std::size_t i = 0; i + 1 < turns.size(); ++i) {
    // Consecutive turning points: ratio -kappa, times on the boundary.
    EXPECT_NEAR(static_cast<double>(turns[i + 1].position /
                                    turns[i].position),
                static_cast<double>(-kappa), 1e-9);
    EXPECT_NEAR(static_cast<double>(turns[i].time),
                static_cast<double>(beta * std::fabs(turns[i].position)),
                1e-9);
  }
}

TEST_P(ZigZagProperty, StaysInsideItsConeAndAtUnitSpeed) {
  const Real beta = static_cast<Real>(GetParam());
  const Trajectory t =
      make_origin_zigzag({.beta = beta, .first_turn = -1,
                          .min_coverage = 100});
  EXPECT_TRUE(within_cone(t, beta));
  EXPECT_LE(t.max_speed(), 1.0L + 1e-12L);
}

INSTANTIATE_TEST_SUITE_P(BetaSweep, ZigZagProperty,
                         ::testing::Values(1.1, 1.5, 5.0 / 3, 2.0, 2.5, 3.0,
                                           5.0, 11.0));

}  // namespace
}  // namespace linesearch

// Randomized consistency properties: generate seeded random (but valid)
// fleets and cross-check every independent code path against every
// other — the engine vs the exact queries, serialization round-trips,
// turn-cost-zero vs plain detection, and the certified evaluator vs the
// probe evaluator.  Determinism: all randomness is seeded per test.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "eval/cr_eval.hpp"
#include "eval/exact.hpp"
#include "eval/turn_cost.hpp"
#include "sim/engine.hpp"
#include "sim/serialize.hpp"

namespace linesearch {
namespace {

/// A random unit-speed-bounded trajectory: a sequence of legs with
/// random directions, speeds in (0.2, 1], lengths in (0.5, 6], and
/// occasional pauses.
Trajectory random_trajectory(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> length(0.5, 6.0);
  std::uniform_real_distribution<double> speed(0.2, 1.0);
  std::bernoulli_distribution go_right(0.5);
  std::bernoulli_distribution pause(0.15);
  std::uniform_int_distribution<int> legs(4, 14);

  TrajectoryBuilder builder;
  builder.start_at(0, 0);
  const int count = legs(rng);
  for (int leg = 0; leg < count; ++leg) {
    if (pause(rng)) {
      builder.wait_until(builder.current_time() +
                         static_cast<Real>(length(rng)));
      continue;
    }
    const Real distance = static_cast<Real>(length(rng));
    const Real v = static_cast<Real>(speed(rng));
    const Real target = builder.current_position() +
                        (go_right(rng) ? distance : -distance);
    builder.move_to_at(target, builder.current_time() + distance / v);
  }
  return std::move(builder).build();
}

Fleet random_fleet(const std::uint64_t seed, const int robots) {
  std::mt19937_64 rng(seed);
  std::vector<Trajectory> fleet;
  for (int i = 0; i < robots; ++i) fleet.push_back(random_trajectory(rng));
  return Fleet(std::move(fleet));
}

class RandomFleetProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomFleetProperty, EngineMatchesExactDetection) {
  const Fleet fleet = random_fleet(0xABCD0000u + GetParam(), 4);
  const Engine engine(fleet);
  std::mt19937_64 rng(0x1234u + GetParam());
  std::uniform_real_distribution<double> position(-8.0, 8.0);
  std::uniform_int_distribution<int> fault_count(0, 3);
  for (int trial = 0; trial < 25; ++trial) {
    const Real target = static_cast<Real>(position(rng));
    if (target == 0) continue;
    std::vector<bool> faults(4, false);
    const int budget = fault_count(rng);
    for (int i = 0; i < budget; ++i) {
      faults[static_cast<std::size_t>(i)] = true;
    }
    const SimulationOutcome outcome = engine.run(target, faults);
    EXPECT_EQ(outcome.detection_time,
              fleet.detection_time_with_faults(target, faults))
        << "seed " << GetParam() << " target "
        << static_cast<double>(target);
  }
}

TEST_P(RandomFleetProperty, SerializationRoundTripsDetection) {
  const Fleet fleet = random_fleet(0xBEEF0000u + GetParam(), 3);
  const Fleet parsed = fleet_from_csv(fleet_to_csv(fleet));
  std::mt19937_64 rng(0x5678u + GetParam());
  std::uniform_real_distribution<double> position(-8.0, 8.0);
  for (int trial = 0; trial < 25; ++trial) {
    const Real target = static_cast<Real>(position(rng));
    for (int f = 0; f < 3; ++f) {
      const Real a = fleet.detection_time(target, f);
      const Real b = parsed.detection_time(target, f);
      if (std::isinf(a)) {
        EXPECT_TRUE(std::isinf(b));
      } else {
        // 21-digit serialization round-trips long double exactly.
        EXPECT_EQ(a, b);
      }
    }
  }
}

TEST_P(RandomFleetProperty, TurnCostZeroEqualsPlainDetection) {
  const Fleet fleet = random_fleet(0xCAFE0000u + GetParam(), 4);
  std::mt19937_64 rng(0x9abcU + GetParam());
  std::uniform_real_distribution<double> position(-8.0, 8.0);
  for (int trial = 0; trial < 25; ++trial) {
    const Real target = static_cast<Real>(position(rng));
    if (target == 0) continue;
    for (int f = 0; f < 4; ++f) {
      const Real plain = fleet.detection_time(target, f);
      const Real costed = turn_cost_detection(fleet, target, f, 0);
      if (std::isinf(plain)) {
        EXPECT_TRUE(std::isinf(costed));
      } else {
        EXPECT_EQ(plain, costed);
      }
    }
  }
}

TEST_P(RandomFleetProperty, TurnCostIsMonotoneInC) {
  const Fleet fleet = random_fleet(0xD00D0000u + GetParam(), 4);
  std::mt19937_64 rng(0xdef0U + GetParam());
  std::uniform_real_distribution<double> position(-6.0, 6.0);
  for (int trial = 0; trial < 15; ++trial) {
    const Real target = static_cast<Real>(position(rng));
    if (target == 0) continue;
    Real previous = 0;
    for (const Real c : {0.0L, 0.5L, 1.5L, 4.0L}) {
      const Real time = turn_cost_detection(fleet, target, 1, c);
      if (std::isinf(time)) break;
      EXPECT_GE(time, previous);
      previous = time;
    }
  }
}

TEST_P(RandomFleetProperty, CertifiedDominatesProbedEvaluator) {
  const Fleet fleet = random_fleet(0xFEED0000u + GetParam(), 5);
  CrEvalOptions probe_options;
  probe_options.window_lo = 0.5L;
  probe_options.window_hi = 4;
  probe_options.require_finite = false;
  probe_options.interior_samples = 16;
  ExactCrOptions exact_options;
  exact_options.window_lo = 0.5L;
  exact_options.window_hi = 4;
  exact_options.require_finite = false;
  for (int f = 0; f < 3; ++f) {
    const CrEvalResult probed = measure_cr(fleet, f, probe_options);
    const Real exact = certified_cr(fleet, f, exact_options).cr;
    // The certified sup can never be below any sampled FINITE value.  A
    // half-line where no probe is ever detected reports sup = infinity
    // (with undetected_probes as the diagnostic); the certified
    // evaluator drops those pieces instead, so domination is asserted
    // per finite half-line.
    for (const Real side_sup : {probed.cr_positive, probed.cr_negative}) {
      if (std::isinf(side_sup)) {
        EXPECT_GT(probed.undetected_probes, 0) << "f=" << f;
      } else {
        EXPECT_GE(exact, side_sup * (1 - 1e-12L)) << "f=" << f;
      }
    }
  }
}

TEST_P(RandomFleetProperty, DetectionMonotoneInFaultBudget) {
  const Fleet fleet = random_fleet(0xFACE0000u + GetParam(), 5);
  std::mt19937_64 rng(0x1111u + GetParam());
  std::uniform_real_distribution<double> position(-8.0, 8.0);
  for (int trial = 0; trial < 25; ++trial) {
    const Real target = static_cast<Real>(position(rng));
    if (target == 0) continue;
    Real previous = 0;
    for (int f = 0; f < 5; ++f) {
      const Real time = fleet.detection_time(target, f);
      EXPECT_GE(time, previous) << "f=" << f;
      if (std::isinf(time)) break;
      previous = time;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFleetProperty,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace linesearch

// Compile-and-smoke test for the umbrella header: one include must
// expose the whole public API, and a representative symbol from every
// layer must be usable.
#include "linesearch.hpp"

#include <gtest/gtest.h>

namespace linesearch {
namespace {

TEST(Umbrella, OneIncludeExposesEveryLayer) {
  // util
  EXPECT_TRUE(approx_equal(1.0L, 1.0L));
  // analysis
  EXPECT_NEAR(static_cast<double>(
                  bisect([](Real x) { return x - 2; }, 0, 5).x),
              2.0, 1e-9);
  // sim
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_fleet(64);
  EXPECT_EQ(fleet.size(), 3u);
  // core
  EXPECT_NEAR(static_cast<double>(algorithm_cr(3, 1)), 5.233, 1e-3);
  // adversary
  EXPECT_GT(theorem2_alpha(3), 3.0L);
  // runtime
  ProportionalController controller(3, 1, 0, 32);
  EXPECT_EQ(controller.next(0, 0).value, 1.0L);
  // eval
  EXPECT_GT(certified_cr(fleet, 1, {.window_hi = 4}).cr, 1.0L);
  // star
  EXPECT_NEAR(static_cast<double>(star_optimal_cr(2)), 9.0, 1e-12);
}

}  // namespace
}  // namespace linesearch

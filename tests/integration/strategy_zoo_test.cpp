// The strategy zoo: every SearchStrategy in the library run through one
// uniform battery — construction, coverage, CR sanity against its own
// theoretical claim, serialization round-trip, and renderability.
// Catches regressions that module-local tests miss when a strategy
// violates the SearchStrategy contract everything downstream assumes.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "core/bounded.hpp"
#include "core/strategy.hpp"
#include "eval/cr_eval.hpp"
#include "sim/recorder.hpp"
#include "sim/serialize.hpp"
#include "sim/svg.hpp"

namespace linesearch {
namespace {

struct ZooEntry {
  std::string label;
  std::function<StrategyPtr()> make;
};

std::vector<ZooEntry> zoo() {
  return {
      {"A_3_1", [] { return std::make_unique<ProportionalAlgorithm>(3, 1); }},
      {"A_5_3", [] { return std::make_unique<ProportionalAlgorithm>(5, 3); }},
      {"A_7_4", [] { return std::make_unique<ProportionalAlgorithm>(7, 4); }},
      {"S_beta_3_1_b2",
       [] { return std::make_unique<ProportionalAlgorithm>(3, 1, 2.0L); }},
      {"split_4_1", [] { return std::make_unique<TwoGroupSplit>(4, 1); }},
      {"split_9_3", [] { return std::make_unique<TwoGroupSplit>(9, 3); }},
      {"pack_3_2", [] { return std::make_unique<GroupDoubling>(3, 2); }},
      {"classic_2_1", [] { return std::make_unique<ClassicCowPath>(2, 1); }},
      {"classic_mirrored_4_1",
       [] { return std::make_unique<ClassicCowPath>(4, 1, true); }},
      {"staggered_3_1",
       [] { return std::make_unique<StaggeredDoubling>(3, 1); }},
      {"uniform_5_3",
       [] { return std::make_unique<UniformOffsetZigzag>(5, 3); }},
      {"bounded_3_1",
       [] { return std::make_unique<BoundedProportional>(3, 1, 4000); }},
  };
}

class StrategyZoo : public ::testing::TestWithParam<std::size_t> {
 protected:
  [[nodiscard]] static StrategyPtr strategy() {
    return zoo()[GetParam()].make();
  }
};

TEST_P(StrategyZoo, MetadataContract) {
  const StrategyPtr s = strategy();
  EXPECT_FALSE(s->name().empty());
  EXPECT_GE(s->robot_count(), 1);
  EXPECT_GE(s->fault_budget(), 0);
  EXPECT_LT(s->fault_budget(), s->robot_count());
}

TEST_P(StrategyZoo, FleetShapeAndCoverage) {
  const StrategyPtr s = strategy();
  const Fleet fleet = s->build_fleet(300);
  EXPECT_EQ(fleet.size(), static_cast<std::size_t>(s->robot_count()));
  EXPECT_TRUE(fleet.covers(1, 300, s->fault_budget() + 1)) << s->name();
  for (RobotId id = 0; id < fleet.size(); ++id) {
    EXPECT_EQ(fleet.robot(id).start_position(), 0.0L);
    EXPECT_LE(fleet.robot(id).max_speed(), 1.0L + 1e-9L);
  }
}

TEST_P(StrategyZoo, MeasuredCrWithinItsOwnClaim) {
  const StrategyPtr s = strategy();
  const Fleet fleet = s->build_fleet(2000);
  const Real measured =
      measure_cr(fleet, s->fault_budget(), {.window_hi = 8}).cr;
  EXPECT_GE(measured, 1.0L - 1e-12L);
  if (const auto claimed = s->theoretical_cr()) {
    EXPECT_LE(measured, *claimed * (1 + 1e-9L)) << s->name();
  }
}

TEST_P(StrategyZoo, SerializationRoundTripsDetection) {
  const StrategyPtr s = strategy();
  const Fleet fleet = s->build_fleet(120);
  const Fleet parsed = fleet_from_csv(fleet_to_csv(fleet));
  for (const Real x : {1.0L, -2.5L, 17.0L, -90.0L}) {
    const Real a = fleet.detection_time(x, s->fault_budget());
    const Real b = parsed.detection_time(x, s->fault_budget());
    if (std::isinf(a)) {
      EXPECT_TRUE(std::isinf(b));
    } else {
      EXPECT_EQ(a, b) << s->name() << " at " << static_cast<double>(x);
    }
  }
}

TEST_P(StrategyZoo, RenderableInBothBackends) {
  const StrategyPtr s = strategy();
  const Fleet fleet = s->build_fleet(40);
  RenderOptions ascii;
  ascii.max_time = 30;
  ascii.max_position = 15;
  EXPECT_FALSE(render_space_time(fleet, ascii).empty());
  SvgOptions svg;
  svg.max_time = 30;
  svg.max_position = 15;
  const std::string document = render_svg(fleet, svg);
  EXPECT_NE(document.find("<polyline"), std::string::npos) << s->name();
}

std::string zoo_name(const ::testing::TestParamInfo<std::size_t>& info) {
  return zoo()[info.param].label;
}

INSTANTIATE_TEST_SUITE_P(All, StrategyZoo,
                         ::testing::Range<std::size_t>(0, zoo().size()),
                         zoo_name);

}  // namespace
}  // namespace linesearch

// End-to-end integration: the full public-API flow a user follows —
// pick a strategy, build the fleet, replay with the event engine, verify
// the outcome against the closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/game.hpp"
#include "adversary/placements.hpp"
#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "core/proportional.hpp"
#include "core/strategy.hpp"
#include "eval/cr_eval.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/recorder.hpp"

namespace linesearch {
namespace {

TEST(EndToEnd, QuickstartFlow) {
  // The README quickstart: 3 robots, 1 possibly faulty, target at 7.3.
  const StrategyPtr strategy = make_optimal_strategy(3, 1);
  const Fleet fleet = strategy->build_fleet(100);

  AdversarialFaults adversary;
  const Real target = 7.3L;
  const std::vector<bool> faults = adversary.choose_faults(fleet, target, 1);

  const Engine engine(fleet);
  EventLog log;
  const SimulationOutcome outcome = engine.run(target, faults, &log);

  ASSERT_TRUE(outcome.detected);
  EXPECT_EQ(outcome.detection_time, fleet.detection_time(target, 1));
  EXPECT_LE(outcome.detection_time / target, *strategy->theoretical_cr());
  EXPECT_GE(outcome.detection_time, target);  // cannot beat unit speed
  EXPECT_FALSE(log.events().empty());
}

TEST(EndToEnd, EveryRegimePairProducesAConsistentPipeline) {
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {2, 1}, {3, 1}, {3, 2}, {4, 2}, {4, 3}, {5, 2}, {5, 3}, {5, 4},
           {6, 3}, {7, 3}, {7, 4}, {7, 6}}) {
    const StrategyPtr strategy = make_optimal_strategy(n, f);
    const Fleet fleet = strategy->build_fleet(500);
    ASSERT_EQ(fleet.size(), static_cast<std::size_t>(n));

    // Coverage invariant: every target in [1, 500] on both sides is
    // eventually seen by f+1 distinct robots.
    EXPECT_TRUE(fleet.covers(1, 500, f + 1)) << n << "," << f;

    // Worst-case detection at a few targets obeys the proven CR.
    const Real cr = *strategy->theoretical_cr();
    for (const Real x : {1.0L, -1.7L, 4.0L, -9.9L, 20.0L}) {
      const Real ratio = fleet.detection_time(x, f) / std::fabs(x);
      EXPECT_LE(ratio, cr * (1 + 1e-9L))
          << n << "," << f << " at x=" << static_cast<double>(x);
      EXPECT_GE(ratio, 1.0L - 1e-12L);
    }
  }
}

TEST(EndToEnd, EngineAgreesWithExactDetectionOnA52) {
  const ProportionalAlgorithm algo(5, 2);
  const Fleet fleet = algo.build_fleet(300);
  const Engine engine(fleet);
  AdversarialFaults adversary;
  for (const Real target : {1.2L, -3.0L, 8.0L, -25.0L}) {
    const std::vector<bool> faults =
        adversary.choose_faults(fleet, target, 2);
    const SimulationOutcome outcome = engine.run(target, faults);
    EXPECT_EQ(outcome.detection_time, fleet.detection_time(target, 2))
        << static_cast<double>(target);
  }
}

TEST(EndToEnd, ScheduleInvariantsHoldForTheBuiltAlgorithm) {
  const ProportionalAlgorithm algo(5, 3);
  const Fleet fleet = algo.build_fleet(80);
  const ScheduleCheck check = check_schedule(fleet, 5, algo.beta(), 1);
  EXPECT_TRUE(check.all_ok());
  EXPECT_LT(check.max_ratio_error, 1e-9L);
}

TEST(EndToEnd, AdversaryVsEvaluatorConsistency) {
  // The Theorem-2 adversary can never force more than the evaluator's
  // measured CR on the same window, and the evaluator can never measure
  // below the adversary's forced ratio.
  const int n = 3, f = 1;
  const ProportionalAlgorithm algo(n, f);
  const Real alpha = comfortable_alpha(n, 0.8L);
  const Real x0 = largest_placement(alpha);
  const Fleet fleet = algo.build_fleet(x0 * 40);

  GameOptions options;
  options.attack_turning_points = true;
  const GameResult game = play_theorem2_game(fleet, f, alpha, options);

  CrEvalOptions eval;
  eval.window_hi = x0;
  const CrEvalResult measured = measure_cr(fleet, f, eval);

  EXPECT_LE(game.forced_ratio, measured.cr * (1 + 1e-9L));
  EXPECT_GE(measured.cr, alpha - 1e-9L);
}

TEST(EndToEnd, RenderedDiagramShowsAllRobots) {
  const ProportionalAlgorithm algo(3, 1);
  const Fleet fleet = algo.build_fleet(30);
  RenderOptions options;
  options.max_time = 40;
  options.max_position = 12;
  options.cone_beta = algo.beta();
  const std::string art = render_space_time(fleet, options);
  EXPECT_NE(art.find('0'), std::string::npos);
  EXPECT_NE(art.find('1'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
}

TEST(EndToEnd, FaultToleranceIsSharp) {
  // With f faults A(n,f) still finds the target; with n faults nothing
  // can (nobody reliable remains).
  const ProportionalAlgorithm algo(3, 2);
  const Fleet fleet = algo.build_fleet(50);
  EXPECT_TRUE(std::isfinite(fleet.detection_time(5, 2)));
  EXPECT_TRUE(std::isinf(fleet.detection_time(5, 3)));
}

}  // namespace
}  // namespace linesearch
